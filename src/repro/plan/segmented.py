"""Segment-aware plan compilation and execution.

A segmented engine shards its corpus by tree (``tid``) into N independent
:class:`Segment`\\ s — each one a complete physical context (row table or
:class:`~repro.columnar.ColumnStore`) over a disjoint set of trees.
Because every query result row belongs to exactly one tree, running the
same plan against each segment and merging the per-segment ``(tid, id)``
lists is *embarrassingly parallel*: no cross-segment joins, no
deduplication, just a sorted merge.

The division of labor:

* :class:`SegmentedPlanCompiler` — parse → lower → optimize exactly
  **once** (against a :class:`SegmentedCatalog` that sums per-segment
  statistics, so selectivity decisions see the whole corpus), then
  physical-compile the optimized IR per segment through the regular
  :meth:`~repro.lpath.compiler.PlanCompiler.compile_physical`.  The
  per-engine plan cache stores the resulting :class:`SegmentedQuery`
  under the same ``(query, pivot, executor)`` key as a monolithic plan —
  the cache is segment-count-agnostic.
* :class:`SegmentedQuery` — drives the per-segment plans, optionally on a
  thread pool supplied by the owning engine, and merges the sorted
  per-segment results.

Results are byte-identical to the monolithic engine: each per-segment
plan yields sorted distinct ``(tid, id)`` pairs, segments partition the
tid space, and ``heapq.merge`` preserves global order.

Fan-out comes in two pool flavors (:class:`SegmentPool`):

* ``mode="thread"`` — the classic thread pool.  Cheap, shares every
  structure, but the columnar executor is CPU-bound pure Python, so the
  GIL serializes the actual work;
* ``mode="process"`` — real multi-core execution for *mmap-backed*
  engines.  Nothing heavy crosses the process boundary: each worker opens
  the ``LPDB0004`` store by ``(path, segment index)`` itself (the OS page
  cache makes the second and every later map of the same file free),
  compiles the query against its own segment, and ships results back as
  packed ``array('q')`` bytes.  The parent merges the sorted per-segment
  results exactly as in thread mode.

The process path is additionally **self-healing**: a worker that dies
mid-query (OOM-killed, SIGKILLed, crashed interpreter) surfaces as
``BrokenProcessPool``, which poisons the whole executor.  Instead of
handing that traceback to the caller, :meth:`SegmentedQuery._map_remote`
respawns the pool (:meth:`SegmentPool.respawn`) and retries the fan-out
up to :func:`process_retries` times; if the process path keeps dying it
*degrades* the pool to in-process thread execution
(:meth:`SegmentPool.degrade`) — every compiled query also holds its
local per-segment plans, so the answer stays byte-identical, just
slower.  With degradation disabled the exhausted retry budget raises a
classified :class:`~repro.lpath.errors.ExecutorRecoveryError`
(``transient=True``) — never a raw pool traceback.
"""

from __future__ import annotations

import os
import threading
from array import array
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from heapq import merge
from typing import Callable, Iterable, NamedTuple, Optional, Sequence

from ..faults import maybe_delay_segment, maybe_kill_worker
from .ir import PlanNode, render
from .lower import Lowerer, lower_and_optimize

POOL_MODES = ("thread", "process")

#: How many times a broken process pool is respawned and the fan-out
#: retried before degrading (or raising, when degradation is off).
PROCESS_RETRIES_ENV = "REPRO_PROCESS_RETRIES"
DEFAULT_PROCESS_RETRIES = 2


def process_retries() -> int:
    """The bounded retry budget for broken process pools (>= 0)."""
    raw = os.environ.get(PROCESS_RETRIES_ENV)
    if raw is None:
        return DEFAULT_PROCESS_RETRIES
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{PROCESS_RETRIES_ENV} must be an integer >= 0, got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(
            f"{PROCESS_RETRIES_ENV} must be an integer >= 0, got {raw!r}"
        )
    return value


def validate_segmentation(
    segments: int, workers: Optional[int], mode: Optional[str] = None
) -> None:
    """Reject nonsensical shard/pool configurations with one error shape
    for every engine (raises :class:`~repro.lpath.errors.LPathError`)."""
    from ..lpath.errors import LPathError

    if not isinstance(segments, int) or segments < 1:
        raise LPathError(f"segments must be a positive int, got {segments!r}")
    if workers is not None and (not isinstance(workers, int) or workers < 1):
        raise LPathError(
            f"workers must be a positive int or None, got {workers!r}"
        )
    if mode is not None and mode not in POOL_MODES:
        raise LPathError(
            f"mode must be one of {POOL_MODES} or None, got {mode!r}"
        )


class SegmentPool:
    """An engine-owned, lazily created worker pool for segment fan-out.

    Calling the pool returns the underlying executor (created on first
    use) or ``None`` when execution should stay sequential — no workers
    configured, nothing to fan out over, or the owning engine has shut
    the pool down.  After :meth:`shutdown`, later calls keep returning
    ``None`` (already-compiled plans still run, just sequentially) rather
    than resurrecting a pool the engine would never release.

    ``mode="process"`` builds a ``ProcessPoolExecutor`` instead of a
    thread pool; queries only take the process path when they also carry
    a :class:`RemoteTask` (mmap-backed engines), since worker processes
    re-open the store by path rather than unpickling it.

    Two recovery transitions keep dead workers from reaching callers:
    :meth:`respawn` replaces a broken process executor with a fresh one
    (``respawns`` counts them), and :meth:`degrade` gives up on the
    process path entirely, flipping the pool to ``mode="thread"`` for
    the rest of its life (``allow_degrade=False`` disables this, turning
    retry exhaustion into a classified error instead)."""

    def __init__(
        self, workers: Optional[int], segments: int, mode: str = "thread"
    ) -> None:
        self.workers = workers
        self.segments = segments
        self.mode = mode if mode is not None else "thread"
        self.allow_degrade = True
        self.respawns = 0
        self.degraded = False
        self._executor = None
        self._closed = False
        self._lock = threading.Lock()

    def __call__(self):
        if (
            self._closed
            or self.workers is None
            or self.workers <= 1
            or self.segments <= 1
        ):
            return None
        # Locked creation: a long-lived engine shared by a query daemon
        # sees its first queries *concurrently*, and an unlocked check
        # would build two pools and leak one.
        with self._lock:
            if self._closed:
                return None
            if self._executor is None:
                size = min(self.workers, self.segments)
                if self.mode == "process":
                    from concurrent.futures import ProcessPoolExecutor

                    self._executor = ProcessPoolExecutor(max_workers=size)
                else:
                    self._executor = ThreadPoolExecutor(
                        max_workers=size,
                        thread_name_prefix="repro-segment",
                    )
            return self._executor

    def respawn(self) -> bool:
        """Replace a (presumed broken) process executor with a fresh one
        on next use; ``False`` when there is nothing to respawn (closed
        pool, or already degraded to threads)."""
        with self._lock:
            if self._closed or self.mode != "process":
                return False
            executor, self._executor = self._executor, None
            self.respawns += 1
        if executor is not None:
            # A broken pool's workers are already gone; don't wait on it.
            executor.shutdown(wait=False)
        return True

    def degrade(self) -> bool:
        """Abandon the process path for this pool's lifetime: future
        fan-outs run on an in-process thread pool over the locally
        compiled per-segment plans (byte-identical results, GIL-bound
        speed).  ``False`` when degradation is disabled or moot."""
        if not self.allow_degrade:
            return False
        with self._lock:
            if self._closed or self.mode != "process":
                return self.degraded
            executor, self._executor = self._executor, None
            self.mode = "thread"
            self.degraded = True
        if executor is not None:
            executor.shutdown(wait=False)
        return True

    def stats(self) -> dict:
        """Recovery counters for observability (/stats, tests)."""
        with self._lock:
            return {
                "mode": self.mode,
                "respawns": self.respawns,
                "degraded": self.degraded,
            }

    def shutdown(self) -> None:
        """Release the executor (if any) and stay sequential forever."""
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


class RemoteSpec(NamedTuple):
    """How worker processes can rebuild one engine's segments: the
    ``LPDB0004`` path plus the compile dialect (``axes`` carries the
    XPath engine's axis whitelist as enum member names — plain strings,
    so the spec stays trivially picklable)."""

    path: str
    dialect: str                          # "LPath" | "XPath"
    axes: Optional[tuple[str, ...]] = None


class RemoteTask(NamedTuple):
    """One compiled query's process-fan-out recipe: everything a worker
    needs to recompile and run the identical query against one segment.
    Captured at compile time (including the ``REPRO_FORCE_JOIN`` override,
    which is part of the plan-cache key) so a cached plan always fans out
    the same physical choice it was compiled with."""

    spec: RemoteSpec
    query: str
    pivot: bool
    executor: str
    force: Optional[str]
    kernels: Optional[str] = None    # the REPRO_KERNELS mode, same contract
    limit: Optional[int] = None      # per-segment top-k (parent truncates)
    agg: Optional[str] = None        # aggregate op (parent sums the dicts)


#: Per-process caches for worker-side segment engines: one opened corpus
#: per path, one compiler + plan cache per (path, segment, dialect).
_WORKER_CORPORA: dict = {}
_WORKER_SEGMENTS: dict = {}


def _worker_segment(spec: RemoteSpec, index: int):
    key = (spec.path, index, spec.dialect, spec.axes)
    entry = _WORKER_SEGMENTS.get(key)
    if entry is None:
        corpus = _WORKER_CORPORA.get(spec.path)
        if corpus is None:
            from ..store import open_mapped_corpus

            corpus = _WORKER_CORPORA[spec.path] = open_mapped_corpus(spec.path)
        from ..columnar.store import MappedColumnStore
        from .cache import PlanCache

        segment = corpus.segments[index]
        if spec.dialect == "XPath":
            from ..lpath.axes import Axis
            from ..xpath.compiler import XPathPlanCompiler
            from ..xpath.engine import XNODE_COLUMNS

            store = MappedColumnStore(segment, column_names=XNODE_COLUMNS)
            axes = frozenset(Axis[name] for name in spec.axes or ())
            compiler = XPathPlanCompiler(column_store=store, axes=axes)
        else:
            from ..lpath.compiler import PlanCompiler

            store = MappedColumnStore(segment)
            compiler = PlanCompiler(
                column_store=store, root_right=store.root_right
            )
        entry = _WORKER_SEGMENTS[key] = (compiler, PlanCache())
    return entry


def _execute_segment(task: RemoteTask, index: int, kind: str):
    """Worker-process entry point: open (cached), compile (cached), run
    one segment, return a count or packed ``(tid, id)`` int64 bytes."""
    from ..columnar.kernels.api import KERNELS_ENV
    from ..columnar.structural import FORCE_ENV
    from .cache import cached_compile

    # Chaos checkpoints: a worker may kill itself (the parent's recovery
    # path is what's under test) or stall before touching the store.
    maybe_kill_worker()
    maybe_delay_segment()
    compiler, cache = _worker_segment(task.spec, index)
    overrides = ((FORCE_ENV, task.force), (KERNELS_ENV, task.kernels))
    previous = {env: os.environ.get(env) for env, _value in overrides}
    for env, value in overrides:
        if value is None:
            os.environ.pop(env, None)
        else:
            os.environ[env] = value
    try:
        compiled = cached_compile(
            cache, compiler, task.query, task.pivot, executor=task.executor,
            limit=task.limit, agg=task.agg,
        )
        if kind == "count":
            return compiled.count()
        if kind == "agg":
            return compiled.aggregate()
        packed = array("q")
        for tid, node_id in compiled.rows():
            packed.append(tid)
            packed.append(node_id)
        return packed.tobytes()
    finally:
        for env, value in previous.items():
            if value is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = value


def _unpack_pairs(blob: bytes) -> list[tuple[int, int]]:
    flat = array("q")
    flat.frombytes(blob)
    pairs = iter(flat)
    return list(zip(pairs, pairs))


class Segment:
    """One shard of a segmented corpus: a disjoint set of trees plus the
    physical structures (and per-segment ``(name, tid)`` partition bounds)
    to query them independently."""

    __slots__ = ("index", "compiler", "size", "kind")

    def __init__(
        self, index: int, compiler, size: int, kind: str = "base"
    ) -> None:
        self.index = index
        self.compiler = compiler  # a PlanCompiler over this shard only
        self.size = size          # label rows in the shard
        self.kind = kind          # "base" (immutable store) or "delta" (WAL)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Segment {self.index} rows={self.size} kind={self.kind}>"


class SegmentedCatalog:
    """The lowerer's catalog surface, summed over every segment.

    Sizes and name frequencies add across disjoint shards, so pivot
    selectivity ordering sees corpus-wide statistics; access-path
    selection delegates to the first segment — all segments share one
    physical design (same clustered key, same index set), so the choice
    is representative."""

    def __init__(self, catalogs: Sequence) -> None:
        if not catalogs:
            raise ValueError("a segmented catalog needs at least one segment")
        self._catalogs = list(catalogs)

    def size(self) -> int:
        return sum(catalog.size() for catalog in self._catalogs)

    def frequency(self, name: Optional[str]) -> int:
        return sum(catalog.frequency(name) for catalog in self._catalogs)

    def tree_count(self) -> int:
        """Trees across all shards (tids are disjoint, so counts add)."""
        return sum(catalog.tree_count() for catalog in self._catalogs)

    def name_stats(self, name: Optional[str]):
        """Per-name statistics merged across shards: cardinalities and
        partition counts add, depth ranges widen, the largest partition is
        the max — giving the optimizer corpus-wide inputs while each
        segment still re-decides its physical join from its own stats."""
        from ..columnar.store import NameStats

        merged = None
        for catalog in self._catalogs:
            stats = catalog.name_stats(name)
            if stats.rows == 0:
                continue
            if merged is None:
                merged = stats
            else:
                merged = NameStats(
                    merged.rows + stats.rows,
                    merged.partitions + stats.partitions,
                    max(merged.max_partition, stats.max_partition),
                    min(merged.min_depth, stats.min_depth),
                    max(merged.max_depth, stats.max_depth),
                )
        return merged if merged is not None else NameStats(0, 0, 0, 0, 0)

    def access_path(self, eq_columns, range_column=None):
        return self._catalogs[0].access_path(eq_columns, range_column)


class SegmentedQuery:
    """A compiled query fanned out over N segments.

    Holds one per-segment compiled result (the same
    :class:`~repro.lpath.compiler.CompiledQuery` objects a monolithic
    engine produces) and merges their sorted outputs.  ``get_pool`` is a
    zero-argument callable supplied by the owning engine returning a
    ``concurrent.futures`` executor, or ``None`` for sequential execution
    — a callable rather than a pool so cached plans survive the engine's
    pool being recycled by :meth:`close`."""

    def __init__(
        self,
        parts: Sequence,
        description: str,
        logical: PlanNode,
        get_pool: Optional[Callable] = None,
        remote: Optional[RemoteTask] = None,
        limit: Optional[int] = None,
        agg: Optional[str] = None,
        kinds: Optional[Sequence[str]] = None,
    ) -> None:
        self.parts = list(parts)
        self.description = description
        self.logical = logical
        self.get_pool = get_pool
        self.remote = remote
        self.limit = limit
        self.agg = agg
        self.kinds = list(kinds) if kinds is not None else None

    def _map(self, task: Callable) -> list:
        def run(part):
            maybe_delay_segment()  # segment_slow bites the thread path too
            return task(part)

        pool = self.get_pool() if self.get_pool is not None else None
        if pool is None or len(self.parts) <= 1:
            return [run(part) for part in self.parts]
        return list(pool.map(run, self.parts))

    def _map_remote(self, kind: str) -> Optional[list]:
        """Fan the query out to worker *processes*, or ``None`` when the
        thread/sequential path should run instead (no pool, a thread
        pool, or nothing to fan out over).

        A ``BrokenProcessPool`` (worker SIGKILLed mid-query, or already
        dead at submit time) never escapes: the pool is respawned and the
        whole fan-out retried up to :func:`process_retries` times — the
        per-segment work is read-only and idempotent, so re-running every
        segment is safe.  When the process path keeps dying the pool
        degrades to threads (``None`` return: the caller's local plans
        run in-process, byte-identical), or, with degradation disabled,
        raises a classified
        :class:`~repro.lpath.errors.ExecutorRecoveryError`."""
        if (
            self.remote is None
            or self.get_pool is None
            or len(self.parts) <= 1
        ):
            return None
        pool_factory = self.get_pool
        attempts = 1 + process_retries()
        for _attempt in range(attempts):
            if getattr(pool_factory, "mode", "thread") != "process":
                return None  # a thread pool (possibly degraded mid-loop)
            pool = pool_factory()
            if pool is None:
                return None
            try:
                futures = [
                    pool.submit(_execute_segment, self.remote, index, kind)
                    for index in range(len(self.parts))
                ]
                return [future.result() for future in futures]
            except BrokenExecutor:
                # Dead worker(s): the executor is poisoned.  Respawn and
                # retry; anything else (engine errors shipped back from a
                # live worker) propagates unchanged.
                respawn = getattr(pool_factory, "respawn", None)
                if respawn is None or not respawn():
                    break
        degrade = getattr(pool_factory, "degrade", None)
        if degrade is not None and degrade():
            return None
        from ..lpath.errors import ExecutorRecoveryError

        raise ExecutorRecoveryError(
            f"segment fan-out failed {attempts} time(s): process workers "
            "keep dying and in-process degradation is disabled; the query "
            "produced no results and is safe to retry"
        )

    def rows(self) -> Iterable[tuple]:
        """Distinct, sorted ``(tid, id)`` pairs across every segment.

        Under a top-k limit every segment already stops at its own first
        k results (each could hold the k globally-smallest keys), so the
        merge only has to truncate — identical output to a monolithic
        top-k because the segments partition the tid space."""
        packed = self._map_remote("rows")
        if packed is not None:
            from ..columnar.kernels.api import merge_packed_pairs

            merged = merge_packed_pairs(packed)
            if merged is None:
                merged = merge(*(_unpack_pairs(blob) for blob in packed))
        else:
            merged = merge(*self._map(lambda part: part.rows()))
        if self.limit is not None:
            return list(merged)[: self.limit]
        return merged

    def count(self) -> int:
        """Total result size — per-segment counts simply add because the
        segments partition the tid space."""
        if self.limit is not None:
            return len(list(self.rows()))
        counts = self._map_remote("count")
        if counts is not None:
            return sum(counts)
        return sum(self._map(lambda part: part.count()))

    def aggregate(self) -> dict:
        """Merge per-segment aggregates: group counts add across the
        disjoint tid shards (and ``{"count": n}`` is just the one-group
        case)."""
        if self.agg is None:
            from ..lpath.errors import LPathCompileError

            raise LPathCompileError("plan carries no aggregate")
        results = self._map_remote("agg")
        if results is None:
            results = self._map(lambda part: part.aggregate())
        from collections import Counter

        merged: Counter = Counter()
        for result in results:
            merged.update(result)
        return dict(merged)

    def explain(self) -> str:
        """The shared logical IR plus the first segment's physical plan
        (all segments compile the same IR against the same design)."""
        parts = [self.description]
        if self.logical is not None:
            parts.append("logical plan:\n" + render(self.logical, indent=2))
        mix = ""
        if self.kinds is not None and "delta" in self.kinds:
            base = sum(1 for kind in self.kinds if kind != "delta")
            delta = len(self.kinds) - base
            mix = f": {base} base + {delta} delta"
        parts.append(
            f"physical plan (x{len(self.parts)} segments{mix}, "
            "segment 0 shown):\n"
            + self.parts[0].plan.explain(indent=2)
        )
        return "\n".join(parts)


class SegmentedPlanCompiler:
    """Compile queries once, execute them against every segment.

    Mirrors the :class:`~repro.lpath.compiler.PlanCompiler` surface the
    engines and the plan cache consume (``compile(query, pivot,
    executor)``), so an engine swaps monolithic for segmented compilation
    without touching its query paths.  Works for both dialects — the
    per-segment compilers carry the scheme, dialect and result class."""

    def __init__(
        self,
        segments: Sequence[Segment],
        get_pool=None,
        remote: Optional[RemoteSpec] = None,
    ) -> None:
        if not segments:
            raise ValueError("a segmented compiler needs at least one segment")
        self.segments = list(segments)
        first = self.segments[0].compiler
        self.dialect = first.dialect
        self.scheme = first.scheme
        self.catalog = SegmentedCatalog(
            [segment.compiler.catalog for segment in self.segments]
        )
        self.lowerer = Lowerer(self.scheme, self.catalog, self.dialect)
        self.get_pool = get_pool
        self.remote = remote

    def compile(
        self, query, pivot: bool = False, executor: str = "volcano",
        limit: Optional[int] = None, agg: Optional[str] = None,
    ) -> SegmentedQuery:
        """One logical compile, N physical compiles, one merged result.

        The logical plan's join annotations come from the summed
        corpus-wide statistics; each per-segment physical compile then
        re-decides probe vs. merge against its own shard's statistics.
        Engines built over an ``LPDB0004`` file additionally attach a
        :class:`RemoteTask` so a process pool can re-run the same query
        worker-side without pickling any plan or store."""
        root, lowered = lower_and_optimize(
            self.lowerer, query, pivot, executor, limit=limit, agg=agg
        )
        parts = [
            segment.compiler.compile_physical(root, lowered, executor)
            for segment in self.segments
        ]
        remote_task = None
        if self.remote is not None:
            from ..columnar.kernels.api import KERNELS_ENV
            from ..columnar.structural import force_mode

            remote_task = RemoteTask(
                self.remote,
                query if isinstance(query, str) else str(query),
                pivot,
                executor,
                force_mode(),
                os.environ.get(KERNELS_ENV) or None,
                limit,
                agg,
            )
        return SegmentedQuery(
            parts, lowered.description, root, self.get_pool, remote_task,
            limit=limit, agg=agg,
            kinds=[segment.kind for segment in self.segments],
        )
