"""The logical query IR shared by the LPath and XPath engines.

Both dialects lower their parsed ASTs to the same small algebra over the
label relation ``(tid, left/start, right/end, depth, id, pid, name,
value)``:

* :class:`Scan` / :class:`Join` — materialize one query step per *slot*
  (8 binding columns), driven by an access spec (:class:`IndexProbe`,
  :class:`TableScan` or :class:`ValueSeed`);
* :class:`Filter` — residual conditions over already-bound slots;
* :class:`Project` / :class:`Distinct` — output shaping;
* :class:`Context` — the leaf of a correlated predicate subplan: it yields
  the incoming binding unchanged.

Conditions are first-class predicate trees (:class:`Cmp`, :class:`AllPred`,
:class:`ExistsPred`, ...) whose operands name binding columns by
``(slot, column)``; the optimizer can therefore reason about which slots a
condition touches, push conditions into probes, and reorder joins.  The
single physical interpreter in :mod:`repro.plan.executor` turns the IR into
runnable plans for either labeling scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

#: Symbolic column offsets within one slot (one label row).  The two
#: labeling schemes share these positions: ``L``/``R`` hold LPath's
#: ``left``/``right`` or the start/end scheme's ``start``/``end``.
T, L, R, D, I, P, N, V = range(8)
ROW_WIDTH = 8

COLUMN_NAMES = ("tid", "left", "right", "depth", "id", "pid", "name", "value")


# -- operands -----------------------------------------------------------------


@dataclass(frozen=True)
class Col:
    """Binding column ``slot.column``."""

    slot: int
    col: int

    def __str__(self) -> str:
        return f"s{self.slot}.{COLUMN_NAMES[self.col]}"


@dataclass(frozen=True)
class Const:
    """A literal operand."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


Operand = Union[Col, Const]


# -- predicates ---------------------------------------------------------------


class Pred:
    """Base class for IR predicates (conditions over a binding)."""


@dataclass(frozen=True)
class Cmp(Pred):
    """``left <op> right`` with ``op`` in ``= != < <= > >=``."""

    left: Operand
    op: str
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class IsElement(Pred):
    """The slot's row is an element (name does not start with ``@``)."""

    slot: int

    def __str__(self) -> str:
        return f"element(s{self.slot})"


@dataclass(frozen=True)
class IsAttr(Pred):
    """The slot's row is an attribute row."""

    slot: int

    def __str__(self) -> str:
        return f"attribute(s{self.slot})"


@dataclass(frozen=True)
class BoolConst(Pred):
    """A constant boolean condition."""

    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class AllPred(Pred):
    """Conjunction."""

    parts: tuple[Pred, ...]

    def __str__(self) -> str:
        return "(" + " and ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class AnyPred(Pred):
    """Disjunction."""

    parts: tuple[Pred, ...]

    def __str__(self) -> str:
        return "(" + " or ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class NotPred(Pred):
    """Negation."""

    part: Pred

    def __str__(self) -> str:
        return f"not({self.part})"


@dataclass(frozen=True)
class RightEdge(Pred):
    """The slot's row is right-aligned with its tree root
    (``right == root_right[tid]``) — LPath ``$`` outside a scope."""

    slot: int

    def __str__(self) -> str:
        return f"right-edge(s{self.slot})"


class SubplanPred(Pred):
    """Base for predicates that run a correlated subplan."""

    subplan: "PlanNode"


@dataclass(eq=False)
class ExistsPred(SubplanPred):
    """True iff the subplan yields at least one binding (semijoin)."""

    subplan: "PlanNode"

    def __str__(self) -> str:
        return "exists{...}"


@dataclass(eq=False)
class ValueCmpPred(SubplanPred):
    """``path <op> literal``: some result of the subplan has a string value
    comparing true against the literal."""

    subplan: "PlanNode"
    op: str
    value: object
    numeric: bool

    def __str__(self) -> str:
        return f"value{{...}} {self.op} {self.value!r}"


@dataclass(eq=False)
class CountCmpPred(SubplanPred):
    """``count(path) <op> number`` over distinct subplan results."""

    subplan: "PlanNode"
    op: str
    target: float

    def __str__(self) -> str:
        return f"count{{...}} {self.op} {self.target}"


@dataclass(eq=False)
class PositionPred(Pred):
    """Restricted ``position()``/``last()`` predicate on a sibling-family
    axis; ``target is None`` means ``last()``."""

    axis: object                 # repro.lpath.axes.Axis
    test_name: Optional[str]     # None for the wildcard test
    op: str
    target: Optional[float]
    ctx_slot: int
    cand_slot: int

    def __str__(self) -> str:
        wanted = "last()" if self.target is None else self.target
        return f"position(s{self.cand_slot}) {self.op} {wanted}"


# -- access specs -------------------------------------------------------------


class Access:
    """How candidate rows for a slot are produced from the current binding."""


@dataclass(frozen=True)
class TableScan(Access):
    """Full scan of the label relation (clustered order)."""

    def __str__(self) -> str:
        return "TableScan"


@dataclass(frozen=True)
class IndexProbe(Access):
    """Prefix-equality probe with an optional range on the next key column.

    ``eq`` operands are in index-key order; ``low``/``high`` bound the
    column right after the equality prefix.  ``self_slot``/``self_name``
    implement the or-self axes: the context row is also yielded when its
    name matches.
    """

    index: str                   # "clustered" or a secondary index name
    eq: tuple[Operand, ...]
    low: Optional[Operand] = None
    high: Optional[Operand] = None
    include_low: bool = True
    include_high: bool = True
    self_slot: Optional[int] = None
    self_name: Optional[str] = None

    def __str__(self) -> str:
        parts = [self.index, "eq=(" + ", ".join(str(o) for o in self.eq) + ")"]
        if self.low is not None or self.high is not None:
            lo = "(" if not self.include_low else "["
            hi = ")" if not self.include_high else "]"
            low = str(self.low) if self.low is not None else "-inf"
            high = str(self.high) if self.high is not None else "+inf"
            parts.append(f"range={lo}{low}, {high}{hi}")
        if self.self_slot is not None:
            parts.append(f"or-self(s{self.self_slot})")
        return "IndexProbe(" + " ".join(parts) + ")"


@dataclass(frozen=True)
class ValueSeed(Access):
    """Drive a step from the value index: find ``[@attr = literal]`` rows,
    then look up their element rows.  ``tid is None`` seeds a whole-corpus
    scan (first step); a :class:`Col` correlates it with the binding."""

    attr: str                    # "@"-prefixed attribute row name
    literal: str
    name_test: Optional[str]     # element name filter, None for wildcard
    root_only: bool = False
    tid: Optional[Operand] = None

    def __str__(self) -> str:
        scope = "corpus" if self.tid is None else f"tree {self.tid}"
        return f"ValueSeed({self.attr}={self.literal!r} over {scope})"


# -- plan nodes ---------------------------------------------------------------


class PlanNode:
    """Base class for logical plan nodes."""


@dataclass(eq=False)
class Context(PlanNode):
    """Leaf of a correlated subplan: yields the incoming binding."""


@dataclass(eq=False)
class Scan(PlanNode):
    """Materialize slot 0 from an access spec (the first query step)."""

    access: Access
    conditions: tuple[Pred, ...]
    label: str
    step: object = None          # AST Step annotation (for the optimizer)

    slot: int = 0


@dataclass(eq=False)
class Join(PlanNode):
    """Extension join: for each input binding, append every access row
    that satisfies the conditions as slot ``slot``.

    ``physical`` records the optimizer's cost-based choice of join
    algorithm for batch execution — ``"merge"`` (set-at-a-time structural
    merge join over the sorted span columns) or ``"probe"`` (per-binding
    index probe); ``None`` means the join shape admits no structural
    variant (or the plan targets the Volcano interpreter, which only
    probes).  ``est_in`` is the estimated input cardinality the choice was
    based on."""

    input: PlanNode
    slot: int
    access: Access
    conditions: tuple[Pred, ...]
    label: str
    axis: object = None          # Axis annotation
    step: object = None          # AST Step annotation
    ctx_slot: Optional[int] = None
    scope_slot: Optional[int] = None
    physical: Optional[str] = None
    est_in: Optional[float] = None


@dataclass(eq=False)
class Filter(PlanNode):
    """Keep bindings satisfying every condition."""

    input: PlanNode
    conditions: tuple[Pred, ...]
    label: str = "filter"


@dataclass(eq=False)
class Project(PlanNode):
    """Keep only the named ``(slot, column)`` positions, in order."""

    input: PlanNode
    cols: tuple[tuple[int, int], ...]


@dataclass(eq=False)
class Distinct(PlanNode):
    """Drop duplicate bindings keyed on ``(slot, column)`` positions (and
    project to that key)."""

    input: PlanNode
    key: tuple[tuple[int, int], ...]


@dataclass(eq=False)
class Limit(PlanNode):
    """Keep only the first ``count`` results in the dialect's output order
    (sorted distinct keys) — the logical top-k operator.  The physical
    executors push the cutoff into the structural-join sweeps so
    deep-chain queries stop the moment k results exist."""

    input: PlanNode
    count: int


#: The aggregate operations :class:`Aggregate` supports.  ``count`` is
#: the distinct result cardinality; the ``count_by_*`` forms group it by
#: the result slot's name or depth column.
AGGREGATE_OPS = ("count", "count_by_name", "count_by_depth")


@dataclass(eq=False)
class Aggregate(PlanNode):
    """Fold the distinct result set to counts without materializing node
    lists: ``op`` is one of :data:`AGGREGATE_OPS`, ``slot`` the result
    slot whose name/depth column keys the grouped forms."""

    input: PlanNode
    op: str
    slot: int


# -- introspection helpers ----------------------------------------------------


def child_of(node: PlanNode) -> Optional[PlanNode]:
    """The single input of a node, or ``None`` for leaves."""
    if isinstance(node, (Scan, Context)):
        return None
    return node.input


def set_child(node: PlanNode, child: PlanNode) -> None:
    """Replace the single input of a non-leaf node."""
    node.input = child


def linearize(node: PlanNode) -> list[PlanNode]:
    """The chain from leaf to ``node`` (leaf first)."""
    chain: list[PlanNode] = []
    current: Optional[PlanNode] = node
    while current is not None:
        chain.append(current)
        current = child_of(current)
    chain.reverse()
    return chain


def operand_slots(operand: Operand) -> set[int]:
    if isinstance(operand, Col):
        return {operand.slot}
    return set()


def pred_slots(pred: Pred) -> set[int]:
    """Every binding slot a predicate reads (subplans contribute the outer
    slots they reference, not the transient slots they introduce)."""
    if isinstance(pred, Cmp):
        return operand_slots(pred.left) | operand_slots(pred.right)
    if isinstance(pred, (IsElement, IsAttr, RightEdge)):
        return {pred.slot}
    if isinstance(pred, (AllPred, AnyPred)):
        return set().union(*(pred_slots(p) for p in pred.parts)) if pred.parts else set()
    if isinstance(pred, NotPred):
        return pred_slots(pred.part)
    if isinstance(pred, BoolConst):
        return set()
    if isinstance(pred, PositionPred):
        return {pred.ctx_slot, pred.cand_slot}
    if isinstance(pred, (ExistsPred, ValueCmpPred, CountCmpPred)):
        return subplan_outer_slots(pred.subplan)
    raise TypeError(f"unknown predicate {pred!r}")


def access_slots(access: Access) -> set[int]:
    if isinstance(access, IndexProbe):
        slots: set[int] = set()
        for operand in access.eq:
            slots |= operand_slots(operand)
        for operand in (access.low, access.high):
            if operand is not None:
                slots |= operand_slots(operand)
        if access.self_slot is not None:
            slots.add(access.self_slot)
        return slots
    if isinstance(access, ValueSeed):
        return operand_slots(access.tid) if access.tid is not None else set()
    return set()


def subplan_outer_slots(node: PlanNode) -> set[int]:
    """Slots of the *outer* binding referenced anywhere in a subplan."""
    introduced: set[int] = set()
    referenced: set[int] = set()
    for item in linearize(node):
        if isinstance(item, (Scan, Join)):
            if isinstance(item, Join):
                referenced |= access_slots(item.access)
            introduced.add(item.slot)
            for pred in item.conditions:
                referenced |= pred_slots(pred)
        elif isinstance(item, Filter):
            for pred in item.conditions:
                referenced |= pred_slots(pred)
        elif isinstance(item, (Project, Distinct)):
            referenced |= {slot for slot, _ in (item.cols if isinstance(item, Project) else item.key)}
    return referenced - introduced


# -- rendering ----------------------------------------------------------------


def _render_conditions(conditions: Sequence[Pred]) -> str:
    if not conditions:
        return ""
    return " if " + " and ".join(str(c) for c in conditions)


def _format_estimate(value: float) -> str:
    """Cardinality estimates rendered stably (no float noise in snapshots)."""
    if value >= 1000:
        return f"{value:.2g}"
    return f"{value:g}" if value == round(value, 1) else f"{value:.1f}"


def render(node: PlanNode, indent: int = 0) -> str:
    """A uniform, dialect-independent textual rendering of the IR."""
    pad = " " * indent
    if isinstance(node, Context):
        return f"{pad}Context"
    if isinstance(node, Scan):
        return f"{pad}Scan(s{node.slot} <- {node.access}: {node.label}){_render_conditions(node.conditions)}"
    if isinstance(node, Join):
        choice = ""
        if node.physical is not None:
            est = (
                "" if node.est_in is None
                else f" est_in={_format_estimate(node.est_in)}"
            )
            choice = f"[{node.physical}{est}]"
        head = (
            f"{pad}Join{choice}(s{node.slot} <- {node.access}: {node.label})"
            f"{_render_conditions(node.conditions)}"
        )
        return head + "\n" + render(node.input, indent + 2)
    if isinstance(node, Filter):
        head = f"{pad}Filter({node.label}){_render_conditions(node.conditions)}"
        return head + "\n" + render(node.input, indent + 2)
    if isinstance(node, Project):
        cols = ", ".join(f"s{s}.{COLUMN_NAMES[c]}" for s, c in node.cols)
        return f"{pad}Project[{cols}]\n" + render(node.input, indent + 2)
    if isinstance(node, Distinct):
        key = ", ".join(f"s{s}.{COLUMN_NAMES[c]}" for s, c in node.key)
        return f"{pad}Distinct[{key}]\n" + render(node.input, indent + 2)
    if isinstance(node, Limit):
        return f"{pad}TopK[k={node.count}]\n" + render(node.input, indent + 2)
    if isinstance(node, Aggregate):
        return (
            f"{pad}Aggregate[{node.op} over s{node.slot}]\n"
            + render(node.input, indent + 2)
        )
    raise TypeError(f"cannot render {node!r}")
