"""Optimizer passes over the logical IR.

Four passes run between lowering and execution, for both dialects:

* :func:`push_down` — classic predicate pushdown over the main pipeline:
  every :class:`~repro.plan.ir.Filter` condition sinks to the deepest
  :class:`Scan`/:class:`Join` whose bound slots cover it, and equality
  conditions on the ``name`` column upgrade the access path itself (a
  table scan, or the per-tree ``idx_tid_id`` fallback probe, becomes a
  clustered name probe chosen through the relational planner);
* :func:`reorder_exists_subplans` — the selectivity-driven join
  reordering of ``pivot=True`` generalized to correlated ``exists``
  predicate subplans: a downward-only chain is re-lowered to start at its
  rarest step (main-chain reordering lives in
  :meth:`repro.plan.lower.Lowerer.lower_pivot`);
* :func:`order_conditions` — evaluate cheap column comparisons before
  positional checks and correlated subplans on every node; with catalog
  statistics available, subplan predicates of the same shape additionally
  order by their estimated seed cardinality (the rarest ``exists`` runs
  first) instead of the static cost class alone;
* :func:`annotate_join_physical` (batch executor only) — the cost-based
  physical-join selection: every merge-eligible ``Join`` is costed as a
  per-binding probe join vs. a set-at-a-time structural merge join using
  the collected per-name cardinality/partition/depth statistics, and the
  winner is recorded on the node (``Join.physical`` / ``Join.est_in``) so
  ``explain()`` shows the choice.  The per-segment physical compile
  re-runs the same model against each shard's own statistics.

All passes mutate the IR in place and preserve results exactly; they are
covered by the cross-backend differential sweeps.
"""

from __future__ import annotations

from typing import Optional

from .ir import (
    AllPred,
    AnyPred,
    BoolConst,
    Cmp,
    Col,
    Const,
    Context,
    CountCmpPred,
    ExistsPred,
    Filter,
    IndexProbe,
    Join,
    NotPred,
    PlanNode,
    PositionPred,
    Pred,
    Scan,
    TableScan,
    ValueCmpPred,
    child_of,
    linearize,
    pred_slots,
    set_child,
    N,
)
from .lower import Lowerer
from .schemes import Catalog


def optimize(
    root: PlanNode,
    lowerer: Lowerer,
    pivot: bool = False,
    executor: str = "volcano",
) -> PlanNode:
    """Run every pass; returns the (mutated) root.

    ``executor`` names the physical backend the plan is destined for —
    the batch executor additionally gets per-join physical selection
    (probe vs. structural merge) annotated from catalog statistics."""
    if pivot:
        reorder_exists_subplans(root, lowerer)
    root = push_down(root, lowerer.catalog)
    order_conditions(root, lowerer.catalog)
    if executor == "columnar":
        annotate_join_physical(root, lowerer.catalog)
    return root


# -- predicate pushdown -------------------------------------------------------


def push_down(root: PlanNode, catalog: Catalog) -> PlanNode:
    """Sink Filter conditions down the main pipeline and upgrade access
    paths that a sunk name-equality condition can narrow."""
    chain = linearize(root)
    if not isinstance(chain[0], Scan):
        return root  # correlated subplans are built tight already
    bound: dict[int, set[int]] = {}
    slots: set[int] = set()
    for position, node in enumerate(chain):
        if isinstance(node, (Scan, Join)):
            slots = slots | {node.slot}
        bound[position] = slots

    for position, node in enumerate(chain):
        if not isinstance(node, Filter):
            continue
        remaining: list[Pred] = []
        for condition in node.conditions:
            target = _sink_target(chain, position, condition, bound)
            if target is None:
                remaining.append(condition)
            else:
                target.conditions = tuple(target.conditions) + (condition,)
        node.conditions = tuple(remaining)

    for node in chain:
        if isinstance(node, (Scan, Join)):
            _upgrade_access(node, catalog)

    return _drop_empty_filters(root)


def _sink_target(
    chain: list[PlanNode], position: int, condition: Pred, bound: dict[int, set[int]]
) -> Optional[PlanNode]:
    """The deepest Scan/Join below ``position`` that binds every slot the
    condition reads, or ``None`` to leave it in place."""
    refs = pred_slots(condition)
    for index in range(position - 1, -1, -1):
        node = chain[index]
        if not isinstance(node, (Scan, Join)):
            continue
        if refs <= bound[index]:
            return node
    return None


def _upgrade_access(node, catalog: Catalog) -> None:
    """Turn a broad access path plus a name-equality condition into a
    clustered name probe (predicate pushdown into the index)."""
    name_cond = None
    for condition in node.conditions:
        if (
            isinstance(condition, Cmp)
            and condition.op == "="
            and isinstance(condition.left, Col)
            and condition.left.col == N
            and condition.left.slot == node.slot
            and isinstance(condition.right, Const)
            and isinstance(condition.right.value, str)
        ):
            name_cond = condition
            break
    if name_cond is None:
        return
    name = name_cond.right.value
    keep = tuple(c for c in node.conditions if c is not name_cond)
    if isinstance(node, Scan) and isinstance(node.access, TableScan):
        path = catalog.access_path(("name",), None)
        node.access = IndexProbe(path.index.name, (Const(name),))
        node.conditions = keep
        node.label = f"{node.label} named {name}"
        return
    if (
        isinstance(node, Join)
        and isinstance(node.access, IndexProbe)
        and node.access.index == "idx_tid_id"
        and len(node.access.eq) == 1
        and node.access.low is None
        and node.access.high is None
        and node.access.self_slot is None
    ):
        path = catalog.access_path(("name", "tid"), None)
        tid = node.access.eq[0]
        node.access = IndexProbe(path.index.name, (Const(name), tid))
        node.conditions = keep


def _drop_empty_filters(root: PlanNode) -> PlanNode:
    chain = linearize(root)
    rebuilt: Optional[PlanNode] = None
    for node in chain:
        if isinstance(node, Filter) and not node.conditions:
            continue
        if rebuilt is not None and child_of(node) is not None:
            set_child(node, rebuilt)
        rebuilt = node
    return rebuilt if rebuilt is not None else root


# -- join reordering for predicate subplans -----------------------------------


def reorder_exists_subplans(root: PlanNode, lowerer: Lowerer) -> None:
    """Pivot downward-only ``exists`` subplans to start at their rarest step."""
    for node in linearize(root):
        if isinstance(node, (Scan, Join, Filter)):
            for condition in node.conditions:
                _reorder_in_pred(condition, lowerer)


def _reorder_in_pred(pred: Pred, lowerer: Lowerer) -> None:
    if isinstance(pred, (AllPred, AnyPred)):
        for part in pred.parts:
            _reorder_in_pred(part, lowerer)
        return
    if isinstance(pred, NotPred):
        _reorder_in_pred(pred.part, lowerer)
        return
    if isinstance(pred, (ValueCmpPred, CountCmpPred)):
        # Reordering changes which slot is materialized last; these need the
        # original result step's rows, so only recurse into nested exists.
        reorder_exists_subplans(pred.subplan, lowerer)
        return
    if not isinstance(pred, ExistsPred):
        return
    reorder_exists_subplans(pred.subplan, lowerer)
    replacement = _pivoted_subplan(pred.subplan, lowerer)
    if replacement is not None:
        pred.subplan = replacement


def _pivoted_subplan(subplan: PlanNode, lowerer: Lowerer) -> Optional[PlanNode]:
    chain = linearize(subplan)
    if not isinstance(chain[0], Context) or len(chain) < 3:
        return None
    joins = chain[1:]
    if not all(isinstance(node, Join) for node in joins):
        return None  # self-step filters pin evaluation order
    steps = []
    for join in joins:
        if join.step is None or join.scope_slot is not None:
            return None
        steps.append(join.step)
    ctx = joins[0].ctx_slot
    free_slot = joins[0].slot
    return lowerer.lower_subchain_pivot(steps, ctx, free_slot)


# -- physical join selection --------------------------------------------------


def annotate_join_physical(root: PlanNode, catalog) -> None:
    """Record the cost-based probe vs. structural-merge choice on every
    merge-eligible main-chain ``Join``, from the catalog's collected
    statistics (``REPRO_FORCE_JOIN`` pins the choice for differential
    testing).  Merge choices carry the resolved kernel backend
    (``merge/native`` | ``merge/python``) so ``explain()`` output can
    never silently cross backends.  Correlated subplans always run
    binding-at-a-time, so only the main pipeline is annotated."""
    from ..columnar.kernels.api import kernels_backend
    from ..columnar.structural import chain_estimates, decide_join, force_mode

    chain = linearize(root)
    if not chain or not isinstance(chain[0], Scan):
        return
    estimates = chain_estimates(chain, catalog)
    force = force_mode()
    backend = kernels_backend()
    for node in chain:
        if not isinstance(node, Join):
            continue
        spec, choice, est_in = decide_join(node, estimates, catalog, force)
        if spec is None:
            node.physical = None
            node.est_in = None
            continue
        node.est_in = est_in
        node.physical = f"merge/{backend}" if choice == "merge" else choice


# -- condition ordering -------------------------------------------------------


def _condition_cost(pred: Pred) -> int:
    if isinstance(pred, (Cmp, BoolConst)):
        return 0
    if isinstance(pred, (AllPred, AnyPred, NotPred)):
        return 1 + max((_condition_cost(p) for p in _parts(pred)), default=0)
    if isinstance(pred, PositionPred):
        return 4
    if isinstance(pred, ExistsPred):
        return 6
    if isinstance(pred, (ValueCmpPred, CountCmpPred)):
        return 8
    return 0  # IsElement / IsAttr / RightEdge


def _parts(pred: Pred):
    if isinstance(pred, NotPred):
        return (pred.part,)
    return pred.parts


def _subplan_seed_estimate(pred: Pred, stats) -> float:
    """Estimated cardinality of a subplan predicate's seeding probe — the
    statistics-driven tiebreak between same-shape subplan conditions (a
    rare ``exists`` refutes bindings more cheaply than a common one)."""
    if not isinstance(pred, (ExistsPred, ValueCmpPred, CountCmpPred)):
        return 0.0
    for node in linearize(pred.subplan):
        if isinstance(node, Join) and isinstance(node.access, IndexProbe):
            operand = node.access.eq[0] if node.access.eq else None
            if isinstance(operand, Const) and isinstance(operand.value, str):
                return float(stats.frequency(operand.value))
            return float(stats.size())
    return float(stats.size())


def order_conditions(root: PlanNode, stats=None) -> None:
    """Stable-sort every node's conditions so cheap column comparisons run
    before correlated subplans; with catalog statistics, subplans of the
    same cost class additionally order by estimated seed cardinality.
    Recurses into subplans."""
    if stats is None:
        key = _condition_cost
    else:
        def key(pred: Pred):
            return (_condition_cost(pred), _subplan_seed_estimate(pred, stats))

    for node in linearize(root):
        if isinstance(node, (Scan, Join, Filter)):
            node.conditions = tuple(sorted(node.conditions, key=key))
            for condition in node.conditions:
                _order_in_pred(condition, stats)


def _order_in_pred(pred: Pred, stats=None) -> None:
    if isinstance(pred, (AllPred, AnyPred)):
        for part in pred.parts:
            _order_in_pred(part, stats)
    elif isinstance(pred, NotPred):
        _order_in_pred(pred.part, stats)
    elif isinstance(pred, (ExistsPred, ValueCmpPred, CountCmpPred)):
        order_conditions(pred.subplan, stats)
