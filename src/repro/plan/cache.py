"""A small LRU plan cache.

Each engine keeps one cache keyed on the *unparsed* query text (plus any
compile options such as ``pivot``), so the repeated-query loops of the
fig6/fig9 benchmarks skip parsing, lowering and optimization entirely.
Compiled plans are stateless closure trees and re-iterable, so sharing one
plan across executions is safe.

The physical-join choice (probe vs. structural merge) is derived from the
engine's collected statistics, which are immutable for a loaded corpus —
so cached plans can never go stale from the cost model.  The only mutable
input is the ``REPRO_FORCE_JOIN`` override, which therefore participates
in the cache key.

The cache is thread-safe: segment fan-out already calls back into engines
from pool threads, so the LRU reorder, the eviction sweep and the
hit/miss/eviction counters all run under one lock — concurrent lookups
can never corrupt the ``OrderedDict`` or tear a :attr:`PlanCache.stats`
snapshot.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Hashable, Optional


class PlanCache:
    """A lock-protected LRU cache with hit/miss/eviction statistics."""

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[object]:
        """The cached plan for ``key``, or ``None`` (counts a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, plan: object) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        with self._lock:
            if self.maxsize == 0:
                return
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Invalidate every entry and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def stats(self) -> dict[str, int]:
        """A consistent counter snapshot (taken under the lock, so a
        concurrent ``put`` can never tear hits against size)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PlanCache size={len(self)}/{self.maxsize} hits={self.hits} "
            f"misses={self.misses} evictions={self.evictions}>"
        )


def compile_options_key(
    query, pivot: bool, executor: str,
    limit: Optional[int] = None, agg: Optional[str] = None,
) -> tuple:
    """The tuple of everything a compiled plan's output depends on: the
    unparsed query text plus every compile option — ``pivot``, the
    physical ``executor``, the top-k ``limit``, the ``agg`` operation,
    the ``REPRO_FORCE_JOIN`` override and the resolved ``REPRO_KERNELS``
    backend.  Shared between the per-engine plan cache and the serving
    layer's result cache (:mod:`repro.serve`), so the two caches can
    never disagree about which knobs distinguish two executions.
    Resolving the kernel backend raises
    :class:`~repro.lpath.errors.LPathError` on an invalid or
    forced-but-unavailable ``REPRO_KERNELS`` value."""
    from ..columnar.kernels.api import kernels_backend

    return (
        (query if isinstance(query, str) else str(query)),
        pivot,
        executor,
        limit,
        agg,
        os.environ.get("REPRO_FORCE_JOIN") or None,
        kernels_backend(),
    )


def cached_compile(
    cache: PlanCache, compiler, query, pivot: bool = False,
    executor: str = "volcano",
    limit: Optional[int] = None, agg: Optional[str] = None,
):
    """Compile ``query`` through ``cache``, keyed on
    :func:`compile_options_key`, so a warm hit can never return a plan
    compiled for the other executor, the other join order, the other
    physical-join mode, the other kernel backend (plans bind their
    backend at compile time), or a different limit/aggregate wrapper.

    The lookup happens before any parsing, so a warm hit skips the whole
    parse → lower → optimize pipeline; AST queries key on their unparse,
    which round-trips, so they share entries with their textual form.
    """
    key = compile_options_key(query, pivot, executor, limit=limit, agg=agg)
    cached = cache.get(key)
    if cached is not None:
        return cached
    compiled = compiler.compile(
        query, pivot=pivot, executor=executor, limit=limit, agg=agg
    )
    cache.put(key, compiled)
    return compiled
