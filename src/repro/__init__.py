"""Reproduction of Bird et al., "Designing and Evaluating an XPath Dialect
for Linguistic Queries" (ICDE 2006): the LPath language, its labeling
scheme and query engine, the comparison baselines, and the evaluation
harness.

Quick start::

    from repro import LPathEngine, parse_tree

    tree = parse_tree("(S (NP (PRP I)) (VP (VBD saw) (NP (DT the) (NN dog))))")
    engine = LPathEngine([tree])
    engine.nodes("//VBD->NP")       # immediate-following axis
"""

from .lpath import LPathEngine, TreeWalkEvaluator, parse
from .tree import Tree, TreeNode, figure1_tree, iter_trees, parse_tree

__version__ = "1.0.0"

__all__ = [
    "LPathEngine",
    "Tree",
    "TreeNode",
    "TreeWalkEvaluator",
    "figure1_tree",
    "iter_trees",
    "parse",
    "parse_tree",
    "__version__",
]
