"""Benchmark datasets: generated once per process, sized by environment.

``REPRO_BENCH_SENTENCES`` scales every benchmark (default 2000 sentences
per corpus, roughly 1/50 of Treebank-3 — pure-Python engines cannot carry
the full 3.5M-node corpora in reasonable benchmark time; Figure 9's
scaling run shows the trend toward full size).
"""

from __future__ import annotations

import os
import tempfile
from functools import lru_cache

from ..baselines.corpussearch import CorpusSearchEngine
from ..baselines.tgrep2 import TGrep2Engine
from ..corpus.generator import generate_corpus, replicate_corpus
from ..lpath.engine import LPathEngine
from ..tree.node import Tree
from ..xpath.engine import XPathEngine

DEFAULT_SENTENCES = 2000
SEED = 20060403  # ICDE 2006

def bench_sentences() -> int:
    """Benchmark corpus size (sentences), from the environment."""
    return int(os.environ.get("REPRO_BENCH_SENTENCES", DEFAULT_SENTENCES))


@lru_cache(maxsize=None)
def corpus(profile: str, sentences: int | None = None) -> tuple[Tree, ...]:
    """The benchmark corpus for a profile (cached)."""
    count = sentences if sentences is not None else bench_sentences()
    return tuple(generate_corpus(profile, sentences=count, seed=SEED))


@lru_cache(maxsize=None)
def scaled_corpus(profile: str, factor: float) -> tuple[Tree, ...]:
    """Figure 9: the profile corpus replicated by ``factor``."""
    return tuple(replicate_corpus(list(corpus(profile)), factor))


@lru_cache(maxsize=None)
def lpath_engine(
    profile: str,
    factor: float = 1.0,
    executor: str = "volcano",
    segments: int = 1,
    workers: int | None = None,
) -> LPathEngine:
    """The LPath engine loaded with a (possibly scaled) corpus.

    ``segments``/``workers`` build the sharded engine variants the
    segment-scaling benchmark sweeps."""
    trees = corpus(profile) if factor == 1.0 else scaled_corpus(profile, factor)
    return LPathEngine(
        list(trees), keep_trees=False, executor=executor,
        segments=segments, workers=workers,
    )


@lru_cache(maxsize=None)
def tgrep2_engine(profile: str, factor: float = 1.0) -> TGrep2Engine:
    """The TGrep2 engine on the same corpus."""
    trees = corpus(profile) if factor == 1.0 else scaled_corpus(profile, factor)
    return TGrep2Engine(list(trees))


@lru_cache(maxsize=None)
def corpussearch_engine(profile: str, factor: float = 1.0) -> CorpusSearchEngine:
    """The CorpusSearch engine on the same corpus."""
    trees = corpus(profile) if factor == 1.0 else scaled_corpus(profile, factor)
    return CorpusSearchEngine(list(trees))


@lru_cache(maxsize=None)
def xpath_engine(profile: str) -> XPathEngine:
    """The XPath-labeling engine on the same corpus."""
    return XPathEngine(list(corpus(profile)))


#: Resources the lru_caches below cannot release themselves: compiled
#: store temp dirs and opened mmap engines (which own file mappings and,
#: in process mode, live worker pools).  :func:`clear_caches` drains both.
_STORE_DIRS: list[str] = []
_MMAP_ENGINES: list[LPathEngine] = []


@lru_cache(maxsize=None)
def compiled_corpus_path(
    profile: str, factor: float = 1.0, segments: int = 1,
    format: str = "lpdb0004", sentences: int | None = None,
) -> str:
    """Save the (possibly scaled) benchmark corpus to a compiled store
    file in a per-process temp dir; cached so the store-open benchmarks
    can reopen one file repeatedly.  ``sentences`` overrides the
    environment knob (benchmarks that need a floor-sized workload clamp
    it, like the structural-join A/B does)."""
    from ..store import save_corpus

    base = corpus(profile, sentences)
    trees = base if factor == 1.0 else replicate_corpus(list(base), factor)
    directory = tempfile.mkdtemp(prefix="repro-bench-store-")
    _STORE_DIRS.append(directory)
    path = os.path.join(
        directory, f"{profile}-{factor:g}x-{segments}seg.{format}"
    )
    save_corpus(list(trees), path, segments=segments, format=format)
    return path


@lru_cache(maxsize=None)
def mmap_engine(
    profile: str, factor: float = 1.0, segments: int = 1,
    workers: int | None = None, mode: str | None = None,
    sentences: int | None = None,
) -> LPathEngine:
    """An mmap-backed LPath engine over the compiled benchmark corpus
    (``mode`` as in :meth:`LPathEngine.from_store_mmap`: process fan-out
    by default when ``workers > 1``)."""
    path = compiled_corpus_path(profile, factor, segments,
                                sentences=sentences)
    engine = LPathEngine.from_store_mmap(path, workers=workers, mode=mode)
    _MMAP_ENGINES.append(engine)
    return engine


def clear_caches() -> None:
    """Drop all cached corpora/engines (tests use this to bound memory).

    Mmap engines are closed first — releasing their mappings, file
    descriptors and worker pools — and the compiled-store temp dirs are
    deleted, so clearing actually returns the resources instead of
    leaving them to whenever GC finalizes the evicted entries."""
    import shutil

    for engine in _MMAP_ENGINES:
        engine.close()
    _MMAP_ENGINES.clear()
    for directory in _STORE_DIRS:
        shutil.rmtree(directory, ignore_errors=True)
    _STORE_DIRS.clear()
    for cached in (corpus, scaled_corpus, lpath_engine, tgrep2_engine,
                   corpussearch_engine, xpath_engine, compiled_corpus_path,
                   mmap_engine):
        cached.cache_clear()
