"""Benchmark datasets: generated once per process, sized by environment.

``REPRO_BENCH_SENTENCES`` scales every benchmark (default 2000 sentences
per corpus, roughly 1/50 of Treebank-3 — pure-Python engines cannot carry
the full 3.5M-node corpora in reasonable benchmark time; Figure 9's
scaling run shows the trend toward full size).
"""

from __future__ import annotations

import os
from functools import lru_cache

from ..baselines.corpussearch import CorpusSearchEngine
from ..baselines.tgrep2 import TGrep2Engine
from ..corpus.generator import generate_corpus, replicate_corpus
from ..lpath.engine import LPathEngine
from ..tree.node import Tree
from ..xpath.engine import XPathEngine

DEFAULT_SENTENCES = 2000
SEED = 20060403  # ICDE 2006

def bench_sentences() -> int:
    """Benchmark corpus size (sentences), from the environment."""
    return int(os.environ.get("REPRO_BENCH_SENTENCES", DEFAULT_SENTENCES))


@lru_cache(maxsize=None)
def corpus(profile: str, sentences: int | None = None) -> tuple[Tree, ...]:
    """The benchmark corpus for a profile (cached)."""
    count = sentences if sentences is not None else bench_sentences()
    return tuple(generate_corpus(profile, sentences=count, seed=SEED))


@lru_cache(maxsize=None)
def scaled_corpus(profile: str, factor: float) -> tuple[Tree, ...]:
    """Figure 9: the profile corpus replicated by ``factor``."""
    return tuple(replicate_corpus(list(corpus(profile)), factor))


@lru_cache(maxsize=None)
def lpath_engine(
    profile: str,
    factor: float = 1.0,
    executor: str = "volcano",
    segments: int = 1,
    workers: int | None = None,
) -> LPathEngine:
    """The LPath engine loaded with a (possibly scaled) corpus.

    ``segments``/``workers`` build the sharded engine variants the
    segment-scaling benchmark sweeps."""
    trees = corpus(profile) if factor == 1.0 else scaled_corpus(profile, factor)
    return LPathEngine(
        list(trees), keep_trees=False, executor=executor,
        segments=segments, workers=workers,
    )


@lru_cache(maxsize=None)
def tgrep2_engine(profile: str, factor: float = 1.0) -> TGrep2Engine:
    """The TGrep2 engine on the same corpus."""
    trees = corpus(profile) if factor == 1.0 else scaled_corpus(profile, factor)
    return TGrep2Engine(list(trees))


@lru_cache(maxsize=None)
def corpussearch_engine(profile: str, factor: float = 1.0) -> CorpusSearchEngine:
    """The CorpusSearch engine on the same corpus."""
    trees = corpus(profile) if factor == 1.0 else scaled_corpus(profile, factor)
    return CorpusSearchEngine(list(trees))


@lru_cache(maxsize=None)
def xpath_engine(profile: str) -> XPathEngine:
    """The XPath-labeling engine on the same corpus."""
    return XPathEngine(list(corpus(profile)))


def clear_caches() -> None:
    """Drop all cached corpora/engines (tests use this to bound memory)."""
    for cached in (corpus, scaled_corpus, lpath_engine, tgrep2_engine,
                   corpussearch_engine, xpath_engine):
        cached.cache_clear()
