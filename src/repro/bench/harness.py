"""Timing harness reproducing the paper's measurement protocol.

Section 5.1: "All experiments were repeated 7 times independently, and the
average query evaluation time was reported, disregarding the maximum and
minimum values."  :func:`paper_timing` implements exactly that trimmed
mean; the pytest-benchmark targets use their own statistics and exist for
regression tracking, while the EXPERIMENTS.md tables come from this
harness.

Note: engines cache compiled plans keyed on the query text, so repeated
``run()`` calls measure execution, not recompilation — exactly the hot
path the protocol repeats.  Clear ``engine.plan_cache`` between rounds to
measure cold-compile latency (see ``benchmarks/bench_plan_cache.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

DEFAULT_REPEATS = 7


@dataclass(frozen=True)
class Measurement:
    """One timed query on one system."""

    system: str
    qid: int
    seconds: float          # trimmed mean
    result_size: int
    repeats: int
    supported: bool = True

    @property
    def unsupported(self) -> bool:
        return not self.supported


def paper_timing(run: Callable[[], int], repeats: int = DEFAULT_REPEATS) -> tuple[float, int]:
    """Trimmed-mean seconds and the result size of ``run``.

    Repeats ``run`` ``repeats`` times, drops the fastest and slowest, and
    averages the rest (the paper's protocol).  With fewer than 3 repeats a
    plain mean is used.
    """
    timings: list[float] = []
    result = 0
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = run()
        timings.append(time.perf_counter() - started)
    if len(timings) >= 3:
        timings = sorted(timings)[1:-1]
    return sum(timings) / len(timings), result


def measure(
    system: str,
    qid: int,
    run: Callable[[], int],
    repeats: int = DEFAULT_REPEATS,
) -> Measurement:
    """Measure one query, tolerating unsupported queries."""
    seconds, size = paper_timing(run, repeats=repeats)
    return Measurement(system, qid, seconds, size, repeats)


def unsupported(system: str, qid: int) -> Measurement:
    """Placeholder for a query a system cannot express."""
    return Measurement(system, qid, float("nan"), -1, 0, supported=False)


def run_suite(
    systems: dict[str, Callable[[int], Optional[Callable[[], int]]]],
    qids: Sequence[int],
    repeats: int = DEFAULT_REPEATS,
) -> list[Measurement]:
    """Run a suite: ``systems`` maps a name to a factory that, given a query
    id, returns a zero-argument runnable (or ``None`` when unsupported)."""
    measurements: list[Measurement] = []
    for qid in qids:
        for system, factory in systems.items():
            runnable = factory(qid)
            if runnable is None:
                measurements.append(unsupported(system, qid))
            else:
                measurements.append(measure(system, qid, runnable, repeats=repeats))
    return measurements
