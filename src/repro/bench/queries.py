"""The evaluation query set (Figure 6(c)) in every system's language.

Each entry carries the LPath query exactly as printed in the paper plus
the translations used for the comparison systems.  ``xpath`` marks the 11
queries supported by the XPath-labeling engine (Figure 10's x-axis).
The tools report different witness nodes for some queries (CorpusSearch
reports the first-mentioned pattern; TGrep2 the pattern head), exactly as
the real tools do; the timing comparisons are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class BenchQuery:
    """One query of the evaluation set, in all dialects."""

    qid: int                      # 1-based, as in Figure 6(c)
    lpath: str
    tgrep2: Optional[str]
    corpussearch: Optional[str]
    xpath: bool                   # supported by the XPath-labeling engine?
    description: str


QUERY_SET: tuple[BenchQuery, ...] = (
    BenchQuery(
        1, "//S[//_[@lex=saw]]",
        "S << saw",
        "(S Doms saw)",
        True, "sentences containing the word 'saw'",
    ),
    BenchQuery(
        2, "//VB->NP",
        "NP , VB",
        "(VB iPrecedes NP)",
        False, "NPs immediately following a verb",
    ),
    BenchQuery(
        3, "//VP/VB-->NN",
        "NN ,, (VB > VP)",
        "(VP iDoms VB) AND (VB Precedes NN)",
        False, "nouns following a verb that is a child of a VP",
    ),
    BenchQuery(
        4, "//VP{/VB-->NN}",
        "VP=v < (VB .. (NN >> =v))",
        "(VP iDoms VB) AND (VB Precedes NN) AND (VP Doms NN)",
        False, "scoped: nouns following the verb inside the same VP",
    ),
    BenchQuery(
        5, "//VP{/NP$}",
        "VP <- NP",
        "(VP iDomsLast NP)",
        False, "NPs that are the rightmost child of a VP",
    ),
    BenchQuery(
        6, "//VP{//NP$}",
        "NP >> (VP=v) !. (__ >> =v)",
        "(VP domsLast NP)",
        False, "NPs that are the rightmost descendant of a VP",
    ),
    BenchQuery(
        7, "//VP[{//^VB->NP->PP$}]",
        "VP=v << (VB !, (__ >> =v) . (NP >> =v . (PP >> =v !. (__ >> =v))))",
        "(VP domsFirst VB) AND (VB iPrecedes NP) AND (NP iPrecedes PP) "
        "AND (VP Doms NP) AND (VP domsLast PP)",
        False, "VPs spanned exactly by VB NP PP",
    ),
    BenchQuery(
        8, "//S[//NP/ADJP]",
        "S << (NP < ADJP)",
        "(S Doms NP) AND (NP iDoms ADJP)",
        True, "sentences with an ADJP under an NP",
    ),
    BenchQuery(
        9, "//NP[not(//JJ)]",
        "NP !<< JJ",
        "NOT (NP Doms JJ)",
        True, "NPs not dominating an adjective",
    ),
    BenchQuery(
        10, "//NP[->PP[//IN[@lex=of]]=>VP]",
        "NP . (PP << of $. VP)",
        "(NP iPrecedes PP) AND (PP Doms of) AND (PP iPrecedes VP) AND "
        "(PP hasSister VP)",
        False, "NPs before an of-PP whose next sibling is a VP",
    ),
    BenchQuery(
        11, "//S[{//_[@lex=what]->_[@lex=building]}]",
        "S=s << (what . (building >> =s))",
        "(S Doms what) AND (S Doms building) AND (what iPrecedes building)",
        False, "sentences with 'what' right before 'building'",
    ),
    BenchQuery(
        12, "//_[@lex=rapprochement]",
        "rapprochement",
        "(* iDoms rapprochement)",
        True, "the word 'rapprochement' (hapax)",
    ),
    BenchQuery(
        13, "//_[@lex=1929]",
        "1929",
        "(* iDoms 1929)",
        True, "the word '1929' (rare)",
    ),
    BenchQuery(
        14, "//ADVP-LOC-CLR",
        "ADVP-LOC-CLR",
        "(ADVP-LOC-CLR iDoms *)",
        True, "a very rare tag",
    ),
    BenchQuery(
        15, "//WHPP",
        "WHPP",
        "(WHPP iDoms *)",
        True, "a rare tag",
    ),
    BenchQuery(
        16, "//RRC/PP-TMP",
        "PP-TMP > RRC",
        "(RRC iDoms PP-TMP)",
        True, "temporal PP under a reduced relative clause",
    ),
    BenchQuery(
        17, "//UCP-PRD/ADJP-PRD",
        "ADJP-PRD > UCP-PRD",
        "(UCP-PRD iDoms ADJP-PRD)",
        True, "predicate ADJP under predicate UCP",
    ),
    BenchQuery(
        18, "//NP/NP/NP/NP/NP",
        "NP > (NP > (NP > (NP > NP)))",
        "(a:NP iDoms b:NP) AND (b:NP iDoms c:NP) AND (c:NP iDoms d:NP) "
        "AND (d:NP iDoms e:NP)",
        True, "five vertically nested NPs (low selectivity)",
    ),
    BenchQuery(
        19, "//VP/VP/VP",
        "VP > (VP > VP)",
        "(a:VP iDoms b:VP) AND (b:VP iDoms c:VP)",
        True, "three vertically nested VPs",
    ),
    BenchQuery(
        20, "//PP=>SBAR",
        "SBAR $, PP",
        "(PP iPrecedes SBAR) AND (PP hasSister SBAR)",
        False, "SBAR as immediate following sibling of a PP",
    ),
    BenchQuery(
        21, "//ADVP=>ADJP",
        "ADJP $, ADVP",
        "(ADVP iPrecedes ADJP) AND (ADVP hasSister ADJP)",
        False, "ADJP right after a sibling ADVP",
    ),
    BenchQuery(
        22, "//NP=>NP=>NP",
        "NP $, (NP $, NP)",
        "(a:NP iPrecedes b:NP) AND (a:NP hasSister b:NP) AND "
        "(b:NP iPrecedes c:NP) AND (b:NP hasSister c:NP)",
        False, "three adjacent sibling NPs (low selectivity)",
    ),
    BenchQuery(
        23, "//VP=>VP",
        "VP $, VP",
        "(a:VP iPrecedes b:VP) AND (a:VP hasSister b:VP)",
        False, "adjacent sibling VPs",
    ),
)

#: Result sizes printed in Figure 6(c), for shape comparison.
PAPER_RESULT_SIZES = {
    "WSJ": [153, 23618, 63857, 46116, 29923, 215104, 2831, 7832, 211392,
            192, 2, 1, 14, 60, 87, 8, 17, 254, 8769, 640, 15, 7, 20],
    "SWB": [339, 16557, 32386, 25305, 22554, 112159, 1963, 2900, 109311,
            31, 5, 0, 0, 0, 20, 3, 4, 12, 6093, 651, 37, 7, 72],
}


def by_id(qid: int) -> BenchQuery:
    """Look up a query by its Figure 6(c) number."""
    for query in QUERY_SET:
        if query.qid == qid:
            return query
    raise KeyError(f"no query Q{qid}")


def xpath_queries() -> list[BenchQuery]:
    """The 11 queries of Figure 10."""
    return [query for query in QUERY_SET if query.xpath]
