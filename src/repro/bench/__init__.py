"""Benchmark harness: query set, datasets, timing protocol, reports."""

from . import datasets, report
from .harness import (
    DEFAULT_REPEATS,
    Measurement,
    measure,
    paper_timing,
    run_suite,
    unsupported,
)
from .queries import (
    BenchQuery,
    PAPER_RESULT_SIZES,
    QUERY_SET,
    by_id,
    xpath_queries,
)

__all__ = [
    "BenchQuery",
    "DEFAULT_REPEATS",
    "Measurement",
    "PAPER_RESULT_SIZES",
    "QUERY_SET",
    "by_id",
    "datasets",
    "measure",
    "paper_timing",
    "report",
    "run_suite",
    "unsupported",
    "xpath_queries",
]
