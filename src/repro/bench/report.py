"""Rendering benchmark measurements as the paper's tables and figures.

Figures 7-10 are log-scale bar/line charts; in a terminal we render the
same series as aligned numeric tables plus ASCII log-scale bars, so "who
wins, by roughly what factor, where the crossovers fall" is visible at a
glance.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from .harness import Measurement


def _by_system(measurements: Sequence[Measurement]) -> dict[str, dict[int, Measurement]]:
    table: dict[str, dict[int, Measurement]] = {}
    for measurement in measurements:
        table.setdefault(measurement.system, {})[measurement.qid] = measurement
    return table


def format_time(measurement: Optional[Measurement]) -> str:
    if measurement is None or measurement.unsupported:
        return "n/a"
    return f"{measurement.seconds:.4f}"


def timing_table(
    measurements: Sequence[Measurement],
    title: str,
    qids: Optional[Sequence[int]] = None,
) -> str:
    """An aligned per-query timing table (seconds, trimmed mean)."""
    table = _by_system(measurements)
    systems = list(table)
    if qids is None:
        qids = sorted({m.qid for m in measurements})
    lines = [title, "%-6s" % "Query" + "".join(f"{system:>16}" for system in systems)
             + f"{'result':>10}"]
    for qid in qids:
        cells = ["%-6s" % f"Q{qid}"]
        size = ""
        for system in systems:
            measurement = table[system].get(qid)
            cells.append(f"{format_time(measurement):>16}")
            if measurement is not None and not measurement.unsupported:
                size = str(measurement.result_size)
        cells.append(f"{size:>10}")
        lines.append("".join(cells))
    return "\n".join(lines)


def log_bar_chart(
    measurements: Sequence[Measurement],
    title: str,
    width: int = 40,
) -> str:
    """ASCII log-scale bars, one group per query (the Figure 7/8 look)."""
    table = _by_system(measurements)
    real = [m.seconds for m in measurements if not m.unsupported and m.seconds > 0]
    if not real:
        return title + "\n(no data)"
    low = math.log10(min(real))
    high = math.log10(max(real))
    span = max(high - low, 1e-9)
    lines = [title, f"(log scale: {min(real):.4f}s .. {max(real):.4f}s)"]
    for qid in sorted({m.qid for m in measurements}):
        for system in table:
            measurement = table[system].get(qid)
            if measurement is None or measurement.unsupported:
                lines.append(f"Q{qid:<3} {system:<14} n/a")
                continue
            fraction = (math.log10(max(measurement.seconds, 1e-9)) - low) / span
            bar = "#" * max(1, int(round(fraction * width)))
            lines.append(
                f"Q{qid:<3} {system:<14} {bar} {measurement.seconds:.4f}s"
            )
        lines.append("")
    return "\n".join(lines)


def scaling_table(
    series: dict[str, list[tuple[float, float]]],
    title: str,
) -> str:
    """Figure 9: time vs corpus-size factor, one column per system."""
    systems = list(series)
    factors = sorted({factor for points in series.values() for factor, _ in points})
    lines = [title, "%-8s" % "scale" + "".join(f"{system:>16}" for system in systems)]
    for factor in factors:
        cells = ["%-8s" % f"{factor:g}x"]
        for system in systems:
            value = dict(series[system]).get(factor)
            cells.append(f"{value:>16.4f}" if value is not None else f"{'n/a':>16}")
        lines.append("".join(cells))
    return "\n".join(lines)


def speedup_summary(
    measurements: Sequence[Measurement],
    baseline: str,
    contender: str,
) -> str:
    """Geometric-mean speedup of ``contender`` over ``baseline``."""
    table = _by_system(measurements)
    ratios: list[float] = []
    for qid, base in table.get(baseline, {}).items():
        other = table.get(contender, {}).get(qid)
        if other is None or base.unsupported or other.unsupported:
            continue
        if base.seconds > 0 and other.seconds > 0:
            ratios.append(base.seconds / other.seconds)
    if not ratios:
        return f"{contender} vs {baseline}: no comparable queries"
    geometric = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return (
        f"{contender} vs {baseline}: geometric-mean speedup "
        f"{geometric:.2f}x over {len(ratios)} queries"
    )
