"""Command-line interface: query, generate, translate and inspect treebanks.

Usage (also via ``python -m repro``)::

    repro generate --profile wsj --sentences 1000 --seed 7 -o corpus.mrg
    repro query corpus.mrg '//VB->NP' --count
    repro query corpus.mrg '//VP{//NP$}' --show 3
    repro query corpus.mrg '//S//NP' --limit 10
    repro query corpus.mrg '//NP' --agg count_by_name
    repro query corpus.mrg --batch queries.txt --executor columnar
    repro query corpus.mrg 'NP , VB' --engine tgrep2
    repro sql '//NP[not(//JJ)]'
    repro stats corpus.mrg

The query command reads Penn-bracketed files (one or more trees, optionally
with the Treebank-3 ``( ... )`` wrappers).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence, TextIO

from .baselines.corpussearch import CorpusSearchEngine
from .baselines.tgrep2 import TGrep2Engine
from .corpus import (
    corpus_stats,
    format_stats_table,
    format_top_tags_table,
    generate_corpus,
    top_tags,
)
from .columnar.kernels import KERNEL_MODES, KERNELS_ENV, kernel_info
from .lpath import LPathEngine, SQLGenerator, parse
from .plan.ir import AGGREGATE_OPS
from .tree import iter_trees, write_trees
from .xpath import XPathEngine

ENGINES = ("lpath", "tgrep2", "corpussearch", "xpath", "treewalk", "sqlite")


def _load_trees(path: str):
    if path == "-":
        return list(iter_trees(sys.stdin.read()))
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_trees(handle.read()))


def _command_generate(args: argparse.Namespace, out: TextIO) -> int:
    trees = generate_corpus(args.profile, sentences=args.sentences, seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            count = write_trees(trees, handle)
        print(f"wrote {count} trees to {args.output}", file=out)
    else:
        write_trees(trees, out)
    return 0


def _print_cache_stats(args: argparse.Namespace, engine, out: TextIO) -> None:
    if not getattr(args, "cache_stats", False):
        return
    info = kernel_info()
    print(
        f"kernels: backend={info['backend']} mode={info['mode']} "
        f"native_available={info['native_available']}",
        file=out,
    )
    stats = engine.cache_stats()
    print(
        "plan cache: "
        + " ".join(f"{key}={stats[key]}" for key in sorted(stats)),
        file=out,
    )


#: Query flags that configure a *local* engine and are meaningless when
#: the engine lives in a daemon on the other side of ``--url``.
_LOCAL_ONLY_QUERY_FLAGS = (
    ("--executor", "executor"), ("--segments", "segments"),
    ("--workers", "workers"), ("--mmap", "mmap"), ("--mode", "mode"),
    ("--kernels", "kernels"), ("--explain", "explain"),
    ("--cache-stats", "cache_stats"),
)


def _load_batch_entries(path: str) -> list:
    """Parse a ``--batch`` file: one query per line, or a JSON object per
    line (``{"query": ..., "limit"/"agg"/"pivot": ...}``); blank lines
    and ``#`` comments are skipped."""
    import json

    if path == "-":
        text = sys.stdin.read()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    entries: list = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("{"):
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path} line {number}: invalid JSON batch entry: {error}"
                )
        else:
            entries.append(line)
    if not entries:
        raise ValueError(
            f"{path}: no queries (one per line; '#' starts a comment)"
        )
    return entries


def _print_aggregate(result: dict, out: TextIO) -> None:
    for group in sorted(result):
        print(f"{group}\t{result[group]}", file=out)


def _print_batch_results(entries, results, show, out: TextIO) -> None:
    """One block per batch member: aggregates as ``group<TAB>count``
    lines, row sets as a count plus the first ``show`` pairs.  Remote
    results arrive as ``(total, rows)`` — the rows may be just the first
    page of a larger result."""
    for index, (entry, result) in enumerate(zip(entries, results)):
        text = entry["query"] if isinstance(entry, dict) else str(entry)
        if isinstance(result, dict):
            rendered = " ".join(
                f"{group}={result[group]}" for group in sorted(result)
            )
            print(f"[q{index}] {text}: {rendered}", file=out)
            continue
        if isinstance(result, tuple):
            total, rows = result
        else:
            total, rows = len(result), result
        print(f"[q{index}] {text}: {total} match(es)", file=out)
        for tid, node_id in list(rows)[: show or 10]:
            print(f"  tree {tid}\tnode {node_id}", file=out)


def _run_batch_query(args: argparse.Namespace, engine, out: TextIO) -> int:
    """``query --batch``: shared-scan execution of a whole query file."""
    entries = _load_batch_entries(args.batch)
    pivot = getattr(args, "pivot", False)
    if getattr(args, "explain", False):
        print(engine.explain_batch(entries, pivot=pivot), file=out)
        _print_cache_stats(args, engine, out)
        return 0
    results = engine.query_batch(entries, pivot=pivot)
    _print_batch_results(entries, results, args.show, out)
    _print_cache_stats(args, engine, out)
    return 0


def _command_query(args: argparse.Namespace, out: TextIO) -> int:
    if getattr(args, "url", None):
        return _run_remote_query(args, out)
    if args.corpus is None:
        print("error: corpus path required", file=sys.stderr)
        return 1
    if args.query is None and getattr(args, "batch", None) is None:
        print("error: query text required (or --batch FILE)", file=sys.stderr)
        return 1
    kernels = getattr(args, "kernels", None)
    if kernels is None:
        return _run_query(args, out)
    # Scope the override to this query: the CLI may be driven in-process
    # (tests, notebooks), so the ambient environment must come back.
    previous = os.environ.get(KERNELS_ENV)
    os.environ[KERNELS_ENV] = kernels
    try:
        return _run_query(args, out)
    finally:
        if previous is None:
            del os.environ[KERNELS_ENV]
        else:
            os.environ[KERNELS_ENV] = previous


def _run_query(args: argparse.Namespace, out: TextIO) -> int:
    from . import store

    engine_name = args.engine
    if engine_name not in ("lpath", "xpath"):
        wanted = [
            flag
            for flag, attr in (("--explain", "explain"), ("--cache-stats", "cache_stats"))
            if getattr(args, attr, False)
        ]
        if wanted:
            print(
                f"error: {'/'.join(wanted)} requires --engine lpath or xpath",
                file=sys.stderr,
            )
            return 1
    batch_path = getattr(args, "batch", None)
    limit = getattr(args, "limit", None)
    agg = getattr(args, "agg", None)
    if (
        batch_path is not None or agg is not None
    ) and engine_name not in ("lpath", "xpath"):
        print(
            "error: --batch/--agg require --engine lpath or xpath",
            file=sys.stderr,
        )
        return 1
    if limit is not None and engine_name not in (
        "lpath", "xpath", "treewalk", "sqlite"
    ):
        print(
            f"error: --limit is not supported by --engine {engine_name}",
            file=sys.stderr,
        )
        return 1
    if agg is not None and (args.count or limit is not None):
        print(
            "error: --agg already returns counts; drop --count/--limit",
            file=sys.stderr,
        )
        return 1
    if limit is not None and args.count:
        print(
            "error: --count with --limit is just min(K, total); drop one",
            file=sys.stderr,
        )
        return 1
    if batch_path is not None and (
        args.query is not None or args.count
        or agg is not None or limit is not None
    ):
        print(
            "error: --batch entries carry their own query/limit/agg; "
            "drop the positional query and --count/--limit/--agg",
            file=sys.stderr,
        )
        return 1
    executor_flag = getattr(args, "executor", None)
    executor = executor_flag if executor_flag is not None else "volcano"
    segments = getattr(args, "segments", None)
    workers = getattr(args, "workers", None)
    mode = getattr(args, "mode", None)
    use_mmap = getattr(args, "mmap", False)
    compiled = args.corpus != "-" and store.is_compiled_corpus(args.corpus)
    if compiled and engine_name not in ("lpath", "sqlite"):
        print(
            "error: compiled corpora only support --engine lpath/sqlite",
            file=sys.stderr,
        )
        return 1
    if use_mmap and (not compiled or engine_name != "lpath"):
        print(
            "error: --mmap needs a compiled LPDB0004 corpus and "
            "--engine lpath",
            file=sys.stderr,
        )
        return 1
    live_dir = compiled and os.path.isdir(args.corpus)
    if live_dir and use_mmap:
        print(
            "error: a live (LPDB0005) directory already serves its base "
            "segments zero-copy; drop --mmap",
            file=sys.stderr,
        )
        return 1
    if live_dir and segments is not None:
        print(
            "error: live corpora keep their on-disk segmentation "
            "(base files + WAL delta); drop --segments",
            file=sys.stderr,
        )
        return 1
    if use_mmap and segments is not None:
        print(
            "error: --mmap keeps the file's on-disk segments; it cannot "
            "re-shard (drop --segments, or re-compile with --segments N "
            "--format lpdb0004)",
            file=sys.stderr,
        )
        return 1
    if use_mmap and executor_flag == "volcano":
        print(
            "error: mmap-backed engines are columnar-only; --executor "
            "volcano needs row storage (drop --mmap or the flag)",
            file=sys.stderr,
        )
        return 1
    if mode is not None and not use_mmap:
        print("error: --mode requires --mmap", file=sys.stderr)
        return 1
    if engine_name in ("lpath", "treewalk", "sqlite"):
        # Only the plan backend runs a physical executor; don't build
        # columnar structures for treewalk/sqlite queries.
        plan_executor = executor if engine_name == "lpath" else "volcano"
        if compiled:
            if use_mmap:
                # Zero-copy adoption of an LPDB0004 store; columnar-only.
                engine = LPathEngine.from_store_mmap(
                    args.corpus, workers=workers, mode=mode
                )
            elif live_dir and engine_name == "lpath" and executor == "columnar":
                # mmap'd base segments + the WAL replayed into an
                # in-memory delta store, merged like any segmented engine.
                engine = LPathEngine.open(args.corpus, workers=workers)
            elif engine_name == "lpath" and executor == "columnar":
                # Straight into columns — no per-row Label objects.  An
                # LPDB0003 file keeps its on-disk shards unless an explicit
                # --segments asks for a different split, in which case the
                # shards are merged and re-dealt.
                file_segments = store.corpus_segment_count(args.corpus)
                if file_segments > 1 and segments in (None, file_segments):
                    engine = LPathEngine.from_columns(
                        store.load_corpus_segments(args.corpus),
                        workers=workers,
                    )
                else:
                    engine = LPathEngine.from_columns(
                        store.load_corpus_columns(args.corpus),
                        segments=segments,
                        workers=workers,
                    )
            else:
                engine = LPathEngine.from_labels(
                    store.load_corpus_labels(args.corpus),
                    executor=plan_executor,
                    segments=1 if segments is None else segments,
                    workers=workers,
                )
            trees = []
        else:
            trees = _load_trees(args.corpus)
            engine = LPathEngine(
                trees, executor=plan_executor,
                segments=1 if segments is None else segments, workers=workers,
            )
        if batch_path is not None:
            return _run_batch_query(args, engine, out)
        if getattr(args, "explain", False):
            print(
                engine.explain(
                    args.query, pivot=getattr(args, "pivot", False),
                    limit=limit, agg=agg,
                ),
                file=out,
            )
            _print_cache_stats(args, engine, out)
            return 0
        if agg is not None:
            _print_aggregate(
                engine.aggregate(
                    args.query, agg=agg, pivot=getattr(args, "pivot", False)
                ),
                out,
            )
            _print_cache_stats(args, engine, out)
            return 0
        backend = "plan" if engine_name == "lpath" else engine_name
        if args.count and backend == "plan":
            # Count through the compiled plan: segmented engines add
            # per-segment counts, and process-mode workers return one
            # integer each instead of shipping every result row.
            print(
                engine.count(args.query, pivot=getattr(args, "pivot", False)),
                file=out,
            )
            _print_cache_stats(args, engine, out)
            return 0
        matches = engine.query(
            args.query, backend=backend, pivot=getattr(args, "pivot", False),
            limit=limit,
        )
        stats_engine = engine
    else:
        trees = _load_trees(args.corpus)
        stats_engine = None
        if engine_name == "tgrep2":
            matches = TGrep2Engine(trees).query(args.query)
        elif engine_name == "corpussearch":
            matches = CorpusSearchEngine(trees).query(args.query)
        else:
            engine = XPathEngine(
                trees, executor=executor,
                segments=1 if segments is None else segments, workers=workers,
            )
            if batch_path is not None:
                return _run_batch_query(args, engine, out)
            if getattr(args, "explain", False):
                print(
                    engine.explain(
                        args.query, pivot=getattr(args, "pivot", False),
                        limit=limit, agg=agg,
                    ),
                    file=out,
                )
                _print_cache_stats(args, engine, out)
                return 0
            if agg is not None:
                _print_aggregate(
                    engine.aggregate(
                        args.query, agg=agg,
                        pivot=getattr(args, "pivot", False),
                    ),
                    out,
                )
                _print_cache_stats(args, engine, out)
                return 0
            if args.count:
                print(
                    engine.count(
                        args.query, pivot=getattr(args, "pivot", False)
                    ),
                    file=out,
                )
                _print_cache_stats(args, engine, out)
                return 0
            matches = engine.query(
                args.query, pivot=getattr(args, "pivot", False), limit=limit
            )
            stats_engine = engine

    if args.count or compiled:
        print(len(matches), file=out)
        if not args.count:
            for tid, node_id in matches[: args.show or 10]:
                print(f"tree {tid}\tnode {node_id}", file=out)
        if stats_engine is not None:
            _print_cache_stats(args, stats_engine, out)
        return 0
    by_tid = {tree.tid: tree for tree in trees}
    shown = 0
    for tid, node_id in matches:
        if args.show is not None and shown >= args.show:
            remaining = len(matches) - shown
            print(f"... and {remaining} more (use --show to adjust)", file=out)
            break
        tree = by_tid[tid]
        node = tree.node_by_id(node_id)
        words = " ".join(
            f"[{leaf.word}]" if node.left <= leaf.left and leaf.right <= node.right
            else (leaf.word or "")
            for leaf in tree.leaves()
        )
        print(f"tree {tid}\t({node.label})\t{words}", file=out)
        shown += 1
    print(f"{len(matches)} match(es)", file=out)
    if stats_engine is not None:
        _print_cache_stats(args, stats_engine, out)
    return 0


def _run_remote_query(args: argparse.Namespace, out: TextIO) -> int:
    """``query --url``: ship the query to a running daemon.

    With ``--url`` the corpus lives on the server, so the command takes
    a single positional — the query text (``repro query --url URL
    '//NP'``); passing a corpus path too is an error.  ``--batch``
    ships the whole file to ``POST /batch`` for shared-scan execution
    server-side."""
    from .serve.client import ServeClient

    if args.query is not None:
        print(
            "error: with --url the corpus lives on the server; pass only "
            "the query text",
            file=sys.stderr,
        )
        return 1
    engine_name = args.engine
    if engine_name not in ("lpath", "xpath"):
        print(
            "error: --url serves the plan dialects; use --engine lpath "
            "or xpath",
            file=sys.stderr,
        )
        return 1
    wanted = [
        flag for flag, attr in _LOCAL_ONLY_QUERY_FLAGS
        if getattr(args, attr, None) not in (None, False)
    ]
    if wanted:
        print(
            f"error: {'/'.join(wanted)} configures a local engine and "
            "cannot be combined with --url (the daemon chose those at "
            "startup)",
            file=sys.stderr,
        )
        return 1
    pivot = getattr(args, "pivot", False)
    batch_path = getattr(args, "batch", None)
    limit = getattr(args, "limit", None)
    agg = getattr(args, "agg", None)
    if batch_path is not None:
        if args.corpus is not None or args.count or agg is not None \
                or limit is not None:
            print(
                "error: --batch entries carry their own query/limit/agg; "
                "drop the positional query and --count/--limit/--agg",
                file=sys.stderr,
            )
            return 1
        entries = _load_batch_entries(batch_path)
        # The HTTP surface calls the plan's top-k ``top_k`` (``limit``
        # is the page size there).
        requests = [
            entry if isinstance(entry, str)
            else {
                ("top_k" if key == "limit" else key): value
                for key, value in entry.items()
            }
            for entry in entries
        ]
        with ServeClient(args.url) as client:
            documents = client.query_batch(
                requests, dialect=engine_name, pivot=pivot
            )
        results = [
            dict(document["aggregate"]) if document.get("agg")
            else (
                document.get("total", len(document["matches"])),
                [tuple(pair) for pair in document["matches"]],
            )
            for document in documents
        ]
        _print_batch_results(entries, results, args.show, out)
        return 0
    query_text = args.corpus
    if query_text is None:
        print("error: query text required (or --batch FILE)", file=sys.stderr)
        return 1
    if agg is not None and (args.count or limit is not None):
        print(
            "error: --agg already returns counts; drop --count/--limit",
            file=sys.stderr,
        )
        return 1
    if limit is not None and args.count:
        print(
            "error: --count with --limit is just min(K, total); drop one",
            file=sys.stderr,
        )
        return 1
    with ServeClient(args.url) as client:
        if agg is not None:
            _print_aggregate(
                client.aggregate(
                    query_text, agg=agg, dialect=engine_name, pivot=pivot
                ),
                out,
            )
            return 0
        if args.count:
            print(
                client.count(query_text, dialect=engine_name, pivot=pivot),
                file=out,
            )
            return 0
        matches = client.query(
            query_text, dialect=engine_name, pivot=pivot, top_k=limit,
        )
    print(len(matches), file=out)
    for tid, node_id in matches[: args.show or 10]:
        print(f"tree {tid}\tnode {node_id}", file=out)
    return 0


def _command_serve(args: argparse.Namespace, out: TextIO) -> int:
    """Run the query daemon until interrupted (then drain and exit 0).

    Failures never escape as tracebacks: anything wrong with the
    *configuration* (missing or malformed store, bad knob values, a
    malformed ``REPRO_FAULTS`` spec, an unbindable address) is one line
    on stderr and exit 2; a crash of the running daemon is one line and
    exit 1.  ``--verbose`` adds the full traceback before the one-liner
    for debugging."""
    import traceback

    from .faults import FAULTS_ENV, active_injector
    from .lpath.errors import LPathError
    from .serve import QueryServer, QueryService, StoreSpec

    if args.kernels is not None:
        # The daemon owns its process: the override holds for its
        # lifetime (and is inherited by process-mode workers).
        os.environ[KERNELS_ENV] = args.kernels
    try:
        active_injector()  # fail a malformed REPRO_FAULTS before binding
        service = QueryService(
            [StoreSpec(path, args.dialect) for path in args.store],
            workers=args.workers,
            mode=args.mode,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            timeout=args.timeout,
            result_cache_size=args.result_cache,
            compact_rows=args.compact_rows,
        )
        server = QueryServer(
            service, host=args.host, port=args.port, verbose=args.verbose
        )
    except (LPathError, ValueError, OSError) as error:
        if args.verbose:
            traceback.print_exc(file=sys.stderr)
        print(f"serve: configuration error: {error}", file=sys.stderr)
        return 2
    info = kernel_info()
    print(
        f"serving {', '.join(args.store)} [{args.dialect}] on {server.url} "
        f"(kernels={info['backend']}, workers={args.workers or 1}, "
        f"max_inflight={args.max_inflight})",
        file=out,
    )
    if os.environ.get(FAULTS_ENV):
        print(
            f"fault injection active: {FAULTS_ENV}="
            f"{os.environ[FAULTS_ENV]}",
            file=out,
        )
    out.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("draining...", file=out)
    except Exception as error:  # noqa: BLE001 — one line, not a traceback
        if args.verbose:
            traceback.print_exc(file=sys.stderr)
        print(
            f"serve: fatal: {type(error).__name__}: {error}", file=sys.stderr
        )
        server.close(drain_timeout=args.drain_timeout)
        return 1
    server.close(drain_timeout=args.drain_timeout)
    return 0


def _command_serve_stats(args: argparse.Namespace, out: TextIO) -> int:
    """Scrape and pretty-print a daemon's ``/stats`` document."""
    import json

    from .serve.client import ServeClient

    with ServeClient(args.url) as client:
        print(json.dumps(client.stats(), indent=2, sort_keys=True), file=out)
    return 0


def _command_sql(args: argparse.Namespace, out: TextIO) -> int:
    generator = SQLGenerator()
    print(generator.generate(parse(args.query)), file=out)
    return 0


def _command_compile(args: argparse.Namespace, out: TextIO) -> int:
    from . import store

    trees = _load_trees(args.corpus)
    segments = getattr(args, "segments", None)
    segments = 1 if segments is None else segments
    format = getattr(args, "format", None)
    format = None if format in (None, "auto") else format
    rows = store.save_corpus(
        trees, args.output, segments=segments, format=format
    )
    suffix = f" in {segments} segments" if segments > 1 else ""
    revision = store.corpus_format(args.output)
    print(
        f"compiled {len(trees)} trees ({rows} label rows) to "
        f"{args.output}{suffix} [{revision}]",
        file=out,
    )
    return 0


def _command_store_info(args: argparse.Namespace, out: TextIO) -> int:
    from . import store

    info = store.corpus_info(args.path, top=args.top)
    kernels = kernel_info()
    native = (
        "available"
        if kernels["native_available"]
        else f"unavailable ({kernels['error']})"
    )
    print(f"file: {info['path']} ({info['bytes']} bytes)", file=out)
    print(f"format: {info['format']}", file=out)
    print(
        f"kernels: backend={kernels['backend']} mode={kernels['mode']} "
        f"native {native}",
        file=out,
    )
    print(f"segments: {info['segments']}", file=out)
    print(f"rows: {info['rows']}", file=out)
    print(f"trees: {info['trees']}", file=out)
    print(f"distinct names: {info['distinct_names']}", file=out)
    if "generation" in info:  # a live (LPDB0005) directory
        print(f"generation: {info['generation']}", file=out)
        print(
            f"base: {info['base_rows']} rows in {info['base_segments']} "
            "segment file(s)",
            file=out,
        )
        print(
            f"delta: {info['delta_rows']} rows in {info['wal_records']} "
            f"WAL record(s) ({info['wal_bytes']} bytes)",
            file=out,
        )
        print(f"next tid: {info['next_tid']}", file=out)
        if info.get("wal_torn_bytes"):
            print(
                f"torn WAL tail: {info['wal_torn_bytes']} byte(s) "
                "(truncated on the next writable open)",
                file=out,
            )
        if info.get("last_recovery"):
            print(f"last recovery: {info['last_recovery']}", file=out)
    if info["top_names"]:
        print(f"top {len(info['top_names'])} names by rows:", file=out)
        width = max(len(name) for name, _stats in info["top_names"])
        header = (
            f"  {'name':<{width}}  {'rows':>8}  {'parts':>7}  "
            f"{'maxpart':>7}  depth"
        )
        print(header, file=out)
        for name, stats in info["top_names"]:
            rows, partitions, max_partition, min_depth, max_depth = stats
            print(
                f"  {name:<{width}}  {rows:>8}  {partitions:>7}  "
                f"{max_partition:>7}  {min_depth}..{max_depth}",
                file=out,
            )
    return 0


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _command_append(args: argparse.Namespace, out: TextIO) -> int:
    """Durably append bracketed trees to a live (LPDB0005) corpus —
    locally (taking the writer lock) or through a running daemon's
    ``POST /append`` (which additionally makes the rows queryable
    immediately on the served engine)."""
    from .store import StoreError

    text = _read_text(args.trees)
    if args.url is not None:
        from .serve.client import ServeClient, ServeClientError

        try:
            with ServeClient(args.url) as client:
                result = client.append(text, store=args.store or None)
        except ServeClientError as error:
            print(f"append: {error}", file=sys.stderr)
            return 1
    else:
        from .live import LiveCorpus

        try:
            with LiveCorpus(args.store) as corpus:
                result = corpus.append_trees(text)
        except StoreError as error:
            print(f"append: {error}", file=sys.stderr)
            return 1
    print(
        f"appended {result['trees']} trees ({result['rows']} label rows) "
        f"at tid {result['first_tid']} "
        f"[generation {result['generation']}, "
        f"{result['wal_records']} WAL records]",
        file=out,
    )
    return 0


def _command_compact(args: argparse.Namespace, out: TextIO) -> int:
    """Fold a live corpus's WAL rows into a fresh immutable base
    segment (a no-op when the delta is empty)."""
    from .live import LiveCorpus
    from .store import StoreError

    try:
        with LiveCorpus(args.store) as corpus:
            result = corpus.compact(segments=args.segments or 1)
    except StoreError as error:
        print(f"compact: {error}", file=sys.stderr)
        return 1
    if not result["compacted_rows"]:
        print("nothing to compact (empty delta)", file=out)
        return 0
    print(
        f"compacted {result['compacted_rows']} rows into "
        f"{result['segment']} [generation {result['generation']}, "
        f"{result['seconds']:.3f}s]",
        file=out,
    )
    return 0


def _command_stats(args: argparse.Namespace, out: TextIO) -> int:
    rows, tags = {}, {}
    for path in args.corpus:
        trees = _load_trees(path)
        rows[path] = corpus_stats(trees)
        tags[path] = top_tags(trees, 10)
    print(format_stats_table(rows), file=out)
    print("", file=out)
    print(format_top_tags_table(tags), file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LPath: an XPath dialect for linguistic queries "
                    "(Bird et al., ICDE 2006 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a synthetic treebank")
    generate.add_argument("--profile", choices=("wsj", "swb"), default="wsj")
    generate.add_argument("--sentences", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", help="output file (default stdout)")
    generate.set_defaults(handler=_command_generate)

    query = commands.add_parser("query", help="run a query over a bracketed corpus")
    query.add_argument("corpus", nargs="?", default=None,
                       help="bracketed treebank file ('-' for stdin); with "
                            "--url, the query text itself")
    query.add_argument("query", nargs="?", default=None,
                       help="the query text (omitted with --url or --batch)")
    query.add_argument("--url", default=None, metavar="URL",
                       help="send the query to a running `repro serve` "
                            "daemon instead of loading a corpus "
                            "(e.g. http://127.0.0.1:8411)")
    query.add_argument("--engine", choices=ENGINES, default="lpath")
    query.add_argument("--count", action="store_true", help="print only the result size")
    query.add_argument("--limit", type=int, default=None, metavar="K",
                       help="return only the first K matches in document "
                            "order, with top-k early termination in the "
                            "plan engines (with --url: server-side top-k)")
    query.add_argument("--agg", choices=AGGREGATE_OPS, default=None,
                       help="evaluate an aggregate without materializing "
                            "result rows (lpath and xpath plan engines)")
    query.add_argument("--batch", default=None, metavar="FILE",
                       help="run every query in FILE as one shared-scan "
                            "batch ('-' for stdin; one query per line, or "
                            "JSON objects with query/limit/agg/pivot keys); "
                            "with --explain, print the shared-scan DAG")
    query.add_argument("--show", type=int, default=10,
                       help="matches to display (default 10)")
    query.add_argument("--pivot", action="store_true",
                       help="selectivity-driven join ordering "
                            "(lpath and xpath plan engines)")
    query.add_argument("--executor", choices=("volcano", "columnar"),
                       default=None,
                       help="physical executor for the plan engines: "
                            "tuple-at-a-time interpreter or batch "
                            "columnar execution (default volcano; "
                            "--mmap engines are always columnar)")
    query.add_argument("--segments", type=int, default=None, metavar="N",
                       help="shard the corpus by tree into N independent "
                            "segments (lpath and xpath plan engines; "
                            "segmented LPDB0003 files keep their on-disk "
                            "shards by default)")
    query.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker-pool size for fanning a query out "
                            "across segments (default: sequential)")
    query.add_argument("--mmap", action="store_true",
                       help="open a compiled LPDB0004 corpus zero-copy "
                            "via mmap (lpath engine; columnar-only, "
                            "O(1) cold start)")
    query.add_argument("--kernels", choices=KERNEL_MODES, default=None,
                       help="columnar hot-loop backend: native cffi "
                            "kernels, the pure-Python loops, or pick "
                            "native when the extension builds (default: "
                            "the REPRO_KERNELS environment variable, "
                            "else auto)")
    query.add_argument("--mode", choices=("thread", "process"), default=None,
                       help="segment fan-out pool flavor for --mmap "
                            "engines: GIL-bound threads or true "
                            "multi-core worker processes (default: "
                            "process when --workers > 1)")
    query.add_argument("--explain", action="store_true",
                       help="print the logical and physical plan (with the "
                            "optimizer's per-join physical choice) instead "
                            "of running the query (lpath and xpath plan "
                            "engines)")
    query.add_argument("--cache-stats", action="store_true",
                       help="print plan-cache hit/miss/eviction counters "
                            "after the query (lpath and xpath plan engines)")
    query.set_defaults(handler=_command_query)

    serve = commands.add_parser(
        "serve",
        help="run a long-lived query daemon over compiled corpora",
    )
    serve.add_argument("store", nargs="+",
                       help="compiled corpus file(s) to serve (LPDB0004 "
                            "files open zero-copy and stay mmap-backed)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8411,
                       help="listen port (0 binds an ephemeral port; "
                            "default 8411)")
    serve.add_argument("--dialect", choices=("lpath", "xpath"),
                       default="lpath",
                       help="the dialect the stores' labels were written "
                            "for (default lpath)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="per-query segment fan-out pool size "
                            "(default: sequential)")
    serve.add_argument("--mode", choices=("thread", "process"), default=None,
                       help="segment fan-out pool flavor for mmap-backed "
                            "stores (default: process when --workers > 1)")
    serve.add_argument("--kernels", choices=KERNEL_MODES, default=None,
                       help="columnar hot-loop backend for the daemon's "
                            "lifetime (default: the REPRO_KERNELS "
                            "environment variable, else auto)")
    serve.add_argument("--max-inflight", type=int, default=8, metavar="N",
                       help="queries executing concurrently before "
                            "admission control queues (default 8)")
    serve.add_argument("--max-queue", type=int, default=16, metavar="N",
                       help="queries allowed to wait for a slot before "
                            "the daemon answers 429 (default 16)")
    serve.add_argument("--timeout", type=float, default=30.0, metavar="SEC",
                       help="per-query deadline, queue time included "
                            "(default 30s; requests may lower it via "
                            "timeout_ms)")
    serve.add_argument("--result-cache", type=int, default=256, metavar="N",
                       help="result-cache capacity in entries (0 disables; "
                            "default 256)")
    serve.add_argument("--compact-rows", type=int, default=0, metavar="N",
                       help="live stores only: background-compact the "
                            "WAL delta once it reaches N rows "
                            "(default 0 = never; compact manually with "
                            "'repro compact')")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="SEC",
                       help="how long shutdown waits for in-flight "
                            "queries (default 10s)")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per request to stderr")
    serve.set_defaults(handler=_command_serve)

    serve_stats = commands.add_parser(
        "serve-stats",
        help="print a running daemon's /stats document (plan cache, "
             "result cache, kernels, per-store config)",
    )
    serve_stats.add_argument("url", help="daemon base url")
    serve_stats.set_defaults(handler=_command_serve_stats)

    sql = commands.add_parser("sql", help="translate an LPath query to SQL")
    sql.add_argument("query")
    sql.set_defaults(handler=_command_sql)

    compile_cmd = commands.add_parser(
        "compile", help="label a bracketed corpus into a binary file"
    )
    compile_cmd.add_argument("corpus", help="bracketed treebank file")
    compile_cmd.add_argument("-o", "--output", required=True)
    compile_cmd.add_argument("--segments", type=int, default=None, metavar="N",
                             help="shard the corpus by tree into N "
                                  "segments (default: one store)")
    compile_cmd.add_argument("--format",
                             choices=("auto", "lpdb0002", "lpdb0003",
                                      "lpdb0004", "lpdb0005"),
                             default="auto",
                             help="on-disk revision: auto picks "
                                  "lpdb0002/lpdb0003 by --segments; "
                                  "lpdb0004 writes the zero-copy mmap "
                                  "layout (columns + statistics "
                                  "pre-built, millisecond opens); "
                                  "lpdb0005 writes a live *directory* "
                                  "(WAL-backed, appendable with "
                                  "'repro append')")
    compile_cmd.set_defaults(handler=_command_compile)

    store_cmd = commands.add_parser(
        "store", help="inspect compiled corpus files"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    info = store_sub.add_parser(
        "info",
        help="format revision, segment/row/tree counts and top-k name "
             "statistics (LPDB0004: sidecar only — no column data read)",
    )
    info.add_argument("path", help="compiled corpus file")
    info.add_argument("--top", type=int, default=10, metavar="K",
                      help="names to list, ranked by row count (default 10)")
    info.set_defaults(handler=_command_store_info)

    append_cmd = commands.add_parser(
        "append",
        help="durably append bracketed trees to a live (LPDB0005) corpus",
    )
    append_cmd.add_argument("store",
                            help="live corpus directory (or, with --url, "
                                 "the served store path)")
    append_cmd.add_argument("trees",
                            help="bracketed treebank file ('-' for stdin)")
    append_cmd.add_argument("--url", default=None, metavar="URL",
                            help="append through a running daemon's "
                                 "POST /append instead of opening the "
                                 "directory (read-your-writes on the "
                                 "served engine)")
    append_cmd.set_defaults(handler=_command_append)

    compact_cmd = commands.add_parser(
        "compact",
        help="fold a live corpus's WAL delta into a fresh immutable "
             "base segment",
    )
    compact_cmd.add_argument("store", help="live corpus directory")
    compact_cmd.add_argument("--segments", type=int, default=None,
                             metavar="N",
                             help="internal segment count for the new "
                                  "base file (default 1)")
    compact_cmd.set_defaults(handler=_command_compact)

    stats = commands.add_parser("stats", help="dataset characteristics (Fig 6a/6b)")
    stats.add_argument("corpus", nargs="+")
    stats.set_defaults(handler=_command_stats)

    return parser


def main(argv: Optional[Sequence[str]] = None, out: TextIO = sys.stdout) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args, out)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except Exception as error:  # surface engine/parse errors cleanly
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
