"""Deterministic fault injection for the executor, store and serving layers.

The fault-tolerance machinery (process-pool recovery in
:mod:`repro.plan.segmented`, store quarantine and load shedding in
:mod:`repro.serve`, retry/backoff in :class:`repro.serve.ServeClient`)
only earns trust when its failure paths actually run.  This module turns
them on deterministically: five *named injection points*, threaded
through the code they exercise, fire according to an environment spec ::

    REPRO_FAULTS=point:prob:seed[,point:prob:seed...]

    REPRO_FAULTS=worker_kill:1.0:7          # every process worker dies
    REPRO_FAULTS=socket_reset:0.25:42       # a quarter of responses reset
    REPRO_FAULTS=mmap_read_error:0.5:3,segment_slow:0.5:3

The points and where they bite:

``worker_kill``
    A process-pool worker SIGKILLs itself on entry to
    :func:`repro.plan.segmented._execute_segment` — upstream sees
    ``BrokenProcessPool`` and must respawn/retry/degrade.
``segment_slow``
    A per-segment execution (thread or process path) sleeps
    :data:`SEGMENT_SLOW_SECONDS` first — exercises deadlines, queue
    growth and the circuit breaker without any wrong answers.
``mmap_read_error``
    A :class:`repro.columnar.MappedColumnStore` read checkpoint raises
    ``OSError`` — the shape of a failing disk or a lost mapping; the
    daemon must classify it 503 and quarantine the store, never 500.
``socket_reset``
    The daemon abandons one ``/query``/``/batch`` response without
    writing a byte, so the client sees the connection die mid-request
    and must reconnect-and-retry.
``cache_poison``
    Rows being written to the serving result cache are corrupted
    *after* their integrity digest was taken — the cache's checksum
    must catch the poisoned entry on the way out and re-execute.
``torn_write``
    A live-store WAL append writes only a prefix of its framed record
    and dies (the shape of a crash mid-``write``) — recovery on the
    next open must truncate the torn tail instead of decoding garbage.
``fsync_fail``
    A durability-barrier ``fsync`` raises ``OSError`` — the writer must
    roll the unacknowledged bytes back and report the append failed,
    never acknowledge rows the disk did not accept.
``disk_full``
    A WAL append fails up front with ``ENOSPC`` — the store must stay
    clean (nothing written, nothing acknowledged) and the error must
    classify as transient.
``compactor_kill``
    The live-store compactor SIGKILLs itself at its next durability
    barrier — the crash-matrix tests run compaction in a subprocess and
    assert the store reopens with zero acknowledged-row loss.

Separately from the probabilistic schedule, ``REPRO_CRASH_POINT=<barrier>[:n]``
SIGKILLs the process the ``n``-th time a *named durability barrier*
(:func:`crash_point`) is crossed — the exhaustive
kill-at-every-barrier subprocess matrix drives this, one barrier per
child process, with no randomness at all.

Decisions are **seed-deterministic**: each point keeps a per-process
call counter and draws ``blake2b(point:seed:counter)`` against the
probability (a real hash, not a CRC — CRC32 is linear, so two seeds one
bit apart would produce correlated firing sequences), and the same spec
over the same (single-threaded) call sequence fires at exactly the same
calls every run — a chaos matrix can pin seeds and assert
byte-identical recovery.  Workers forked into a
process pool inherit the environment and start their own counters at
zero, which is exactly what makes a respawned pool's behavior
reproducible too.

This module imports only the standard library, so any layer (including
:mod:`repro.columnar.store`, which must stay import-light) can thread a
checkpoint through without cycles.  When ``REPRO_FAULTS`` is unset every
checkpoint is one dict lookup.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from typing import NamedTuple, Optional

FAULTS_ENV = "REPRO_FAULTS"
CRASH_ENV = "REPRO_CRASH_POINT"

FAULT_POINTS = (
    "worker_kill",
    "segment_slow",
    "mmap_read_error",
    "socket_reset",
    "cache_poison",
    "torn_write",
    "fsync_fail",
    "disk_full",
    "compactor_kill",
)

#: How long a fired ``segment_slow`` sleeps.
SEGMENT_SLOW_SECONDS = 0.05


class FaultSpec(NamedTuple):
    """One activated injection point: fire with ``probability`` on each
    pass, drawn deterministically from ``seed`` and the call counter."""

    point: str
    probability: float
    seed: int


class FaultConfigError(ValueError):
    """A malformed ``REPRO_FAULTS`` value — a configuration error (the
    CLI exits 2), never a runtime crash."""


def parse_fault_specs(raw: str) -> dict[str, FaultSpec]:
    """Parse a ``point:prob:seed[,...]`` spec; raises
    :class:`FaultConfigError` with the offending part spelled out."""
    specs: dict[str, FaultSpec] = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) != 3:
            raise FaultConfigError(
                f"bad {FAULTS_ENV} entry {part!r}: expected point:prob:seed"
            )
        point, prob_text, seed_text = fields
        if point not in FAULT_POINTS:
            raise FaultConfigError(
                f"unknown fault point {point!r}; choose from "
                f"{', '.join(FAULT_POINTS)}"
            )
        try:
            probability = float(prob_text)
        except ValueError:
            raise FaultConfigError(
                f"bad {FAULTS_ENV} probability {prob_text!r} for {point}"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise FaultConfigError(
                f"{point} probability must be in [0, 1], got {probability}"
            )
        try:
            seed = int(seed_text)
        except ValueError:
            raise FaultConfigError(
                f"bad {FAULTS_ENV} seed {seed_text!r} for {point}"
            ) from None
        if point in specs:
            raise FaultConfigError(f"duplicate fault point {point!r}")
        specs[point] = FaultSpec(point, probability, seed)
    return specs


class Injector:
    """The active fault plan plus one call counter per point."""

    def __init__(self, specs: dict[str, FaultSpec]) -> None:
        self.specs = specs
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def fires(self, point: str) -> bool:
        spec = self.specs.get(point)
        if spec is None:
            return False
        with self._lock:
            count = self._counts.get(point, 0)
            self._counts[point] = count + 1
        if spec.probability >= 1.0:
            return True
        if spec.probability <= 0.0:
            return False
        token = f"{point}:{spec.seed}:{count}".encode("ascii")
        digest = hashlib.blake2b(token, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64 < spec.probability

    def counts(self) -> dict[str, int]:
        """Checkpoint passes per point (fired or not) — observability."""
        with self._lock:
            return dict(self._counts)


#: The parsed injector for the current ``REPRO_FAULTS`` value, rebuilt
#: whenever the raw value changes (tests flip the env mid-process).
_ACTIVE: tuple[Optional[str], Optional[Injector]] = (None, None)
_ACTIVE_LOCK = threading.Lock()


def active_injector() -> Optional[Injector]:
    """The process's injector, or ``None`` when no faults are configured.
    Raises :class:`FaultConfigError` on a malformed spec."""
    raw = os.environ.get(FAULTS_ENV)
    if not raw:
        return None
    global _ACTIVE
    cached_raw, injector = _ACTIVE
    if cached_raw != raw:
        with _ACTIVE_LOCK:
            cached_raw, injector = _ACTIVE
            if cached_raw != raw:
                injector = Injector(parse_fault_specs(raw))
                _ACTIVE = (raw, injector)
    return injector


def fires(point: str) -> bool:
    """Advance ``point``'s counter and report whether it fires now."""
    injector = active_injector()
    return injector is not None and injector.fires(point)


def fault_counts() -> dict[str, int]:
    """Checkpoint passes per active point ({} when faults are off)."""
    injector = active_injector()
    return injector.counts() if injector is not None else {}


# -- the injection helpers, one per point ---------------------------------


def maybe_kill_worker() -> None:
    """``worker_kill``: SIGKILL the calling process — only ever reached
    inside process-pool workers, whose parent must survive it."""
    if fires("worker_kill"):
        import signal

        os.kill(os.getpid(), signal.SIGKILL)


def maybe_delay_segment() -> None:
    """``segment_slow``: stall one segment execution."""
    if fires("segment_slow"):
        time.sleep(SEGMENT_SLOW_SECONDS)


def maybe_mmap_read_error() -> None:
    """``mmap_read_error``: fail a mapped-store read the way a dying
    disk or a revoked mapping would."""
    if fires("mmap_read_error"):
        raise OSError("injected fault: mmap read failed (mmap_read_error)")


def maybe_reset_socket() -> bool:
    """``socket_reset``: report whether the transport should abandon the
    current response (the daemon closes the connection unanswered)."""
    return fires("socket_reset")


def maybe_torn_write() -> bool:
    """``torn_write``: report whether the writer should tear the record
    it is about to persist (write a prefix, then act crashed)."""
    return fires("torn_write")


def maybe_fsync_fail() -> None:
    """``fsync_fail``: fail a durability barrier the way a dying disk or
    a thin-provisioned volume under pressure would."""
    if fires("fsync_fail"):
        raise OSError("injected fault: fsync failed (fsync_fail)")


def maybe_disk_full() -> None:
    """``disk_full``: refuse a write up front with ``ENOSPC``."""
    if fires("disk_full"):
        import errno

        raise OSError(
            errno.ENOSPC, "injected fault: no space left on device (disk_full)"
        )


def maybe_kill_compactor() -> None:
    """``compactor_kill``: SIGKILL the process at a compaction barrier —
    only meaningful when compaction runs in a sacrificial subprocess
    (the crash matrix) or when the whole daemon is the blast radius
    under test."""
    if fires("compactor_kill"):
        import signal

        os.kill(os.getpid(), signal.SIGKILL)


#: Per-process pass counters for :func:`crash_point` barriers.
_BARRIER_COUNTS: dict[str, int] = {}
_BARRIER_LOCK = threading.Lock()


def crash_point(name: str) -> None:
    """Cross the named durability barrier; SIGKILL the process when
    ``REPRO_CRASH_POINT=name[:n]`` selects this barrier's ``n``-th pass
    (1-based, default 1).

    This is the deterministic sibling of the probabilistic fault points:
    the kill-at-every-barrier matrix spawns one subprocess per
    ``(barrier, occurrence)`` pair and asserts the store reopens with
    zero acknowledged-row loss.  Unset, each barrier costs one dict
    lookup."""
    spec = os.environ.get(CRASH_ENV)
    if not spec:
        return
    point, _, nth_text = spec.partition(":")
    if point != name:
        return
    with _BARRIER_LOCK:
        count = _BARRIER_COUNTS.get(name, 0) + 1
        _BARRIER_COUNTS[name] = count
    try:
        nth = int(nth_text) if nth_text else 1
    except ValueError:
        raise FaultConfigError(
            f"bad {CRASH_ENV} occurrence {nth_text!r}; expected barrier[:n]"
        ) from None
    if count == nth:
        import signal

        os.kill(os.getpid(), signal.SIGKILL)


def poisoned_rows(rows: tuple) -> tuple:
    """``cache_poison``: the rows to actually store in the result cache
    — corrupted when the point fires, ``rows`` unchanged otherwise.
    Callers digest the *original* rows first, modeling corruption that
    lands after the checksum was taken."""
    if not fires("cache_poison"):
        return rows
    if not rows:
        return ((-1, -1),)
    first = rows[0]
    if isinstance(first, tuple) and len(first) == 2:
        poisoned = ((first[0], -1 - first[1]),) + rows[1:]
    else:  # aggregate shape or anything else: drop the first entry
        poisoned = rows[1:]
    return poisoned
