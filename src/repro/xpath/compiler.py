"""Query compiler for the baseline XPath engine (start/end labeling, [11]).

Mirrors :mod:`repro.lpath.compiler` but over the relation
``xnode(tid, start, end, depth, id, pid, name, value)`` whose spans come
from textual start/end tag positions.  Only the XPath-expressible axes are
supported; the immediate-* axes, subtree scoping and edge alignment raise
:class:`~repro.lpath.errors.LPathCompileError` — this asymmetry is exactly
what Figure 10 measures (same cost on shared queries, fewer supported
queries).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from ..lpath.ast import (
    AndExpr,
    Comparison,
    FunctionCall,
    Literal,
    NotExpr,
    Number,
    OrExpr,
    Path,
    PathExists,
    PredicateExpr,
    Scope,
    Step,
)
from ..lpath.axes import Axis
from ..lpath.errors import LPathCompileError
from ..lpath.parser import parse
from ..relational.operators import Distinct, IndexNestedLoopJoin, Operator, Select, Source
from ..relational.expression import Func
from ..relational.table import Table

# Column offsets in one xnode row.
T, S, E, D, I, P, N, V = range(8)
ROW_WIDTH = 8

#: Every axis XPath can express over start/end labels.
XPATH_AXES = frozenset(
    {
        Axis.CHILD,
        Axis.DESCENDANT,
        Axis.DESCENDANT_OR_SELF,
        Axis.PARENT,
        Axis.ANCESTOR,
        Axis.ANCESTOR_OR_SELF,
        Axis.FOLLOWING,
        Axis.PRECEDING,
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING_SIBLING,
        Axis.SELF,
        Axis.ATTRIBUTE,
    }
)

#: The fragment the paper's [11]-based comparator actually implements —
#: "proposed to efficiently evaluate the descendant axis and the child
#: axis by testing label containment".  This is what makes Figure 10 an
#: 11-query comparison (Q3's following axis falls outside it).
VERTICAL_FRAGMENT = frozenset(
    {
        Axis.CHILD,
        Axis.DESCENDANT,
        Axis.DESCENDANT_OR_SELF,
        Axis.PARENT,
        Axis.ANCESTOR,
        Axis.ANCESTOR_OR_SELF,
        Axis.SELF,
        Axis.ATTRIBUTE,
    }
)

BindingCheck = Callable[[tuple], bool]


def _is_element(row: tuple) -> bool:
    return not row[N].startswith("@")


class _Step:
    __slots__ = ("probe", "checks")

    def __init__(self, probe, checks) -> None:
        self.probe = probe
        self.checks = list(checks)

    def matches(self, binding: tuple) -> Iterable[tuple]:
        for row in self.probe(binding):
            combined = binding + row
            if all(check(combined) for check in self.checks):
                yield row


class XPathCompiledQuery:
    """Executable plan over the start/end label relation."""

    def __init__(self, plan: Operator, result_base: int) -> None:
        self.plan = plan
        self.result_base = result_base

    def rows(self) -> list[tuple]:
        return sorted(self.plan)


class XPathPlanCompiler:
    """Compile the XPath-expressible fragment against the xnode table."""

    def __init__(self, table: Table, axes: frozenset = VERTICAL_FRAGMENT) -> None:
        self.table = table
        self.axes = axes
        self.clustered = table.clustered
        self.by_tid_id = table.index("idx_tid_id")
        self.by_value = table.index("idx_value_tid_id")

    def compile(self, query) -> XPathCompiledQuery:
        path = parse(query) if isinstance(query, str) else query
        items = list(path.items)
        if not items or isinstance(items[0], Scope):
            raise LPathCompileError("XPath queries cannot start with a scope")
        self._reject_lpath_only(items)
        first = items[0]
        plan = self._value_seed(first) or self._first_source(first)
        for check in self._predicate_checks(first, 0):
            plan = Select(plan, Func(check, "first-step predicate"))
        base, free = 0, ROW_WIDTH
        for item in items[1:]:
            step = item
            if step.axis is Axis.SELF:
                for check in self._self_checks(step, base, free):
                    plan = Select(plan, Func(check, "self step"))
                continue
            exec_ = self._step_exec(step, base, free)
            plan = IndexNestedLoopJoin(plan, exec_.matches, f"xpath {step.axis.value}")
            base, free = free, free + ROW_WIDTH
        final = Distinct(plan, positions=(base + T, base + I))
        return XPathCompiledQuery(final, base)

    # -- validation --------------------------------------------------------

    def _reject_lpath_only(self, items: Sequence) -> None:
        stack = list(items)
        while stack:
            item = stack.pop()
            if isinstance(item, Scope):
                raise LPathCompileError(
                    "subtree scoping is not expressible in XPath (Lemma 3.1)"
                )
            if item.axis not in self.axes:
                if item.axis in XPATH_AXES:
                    raise LPathCompileError(
                        f"the {item.axis.value} axis is outside the [11] "
                        "translation's vertical fragment"
                    )
                raise LPathCompileError(
                    f"the {item.axis.value} axis is not expressible in XPath "
                    "(Lemma 3.1)"
                )
            if item.left_aligned or item.right_aligned:
                raise LPathCompileError(
                    "edge alignment is not expressible in XPath over descendants"
                )
            for predicate in item.predicates:
                stack.extend(_paths_in(predicate))

    # -- sources and steps -----------------------------------------------------

    def _first_source(self, step: Step) -> Operator:
        if step.axis is Axis.DESCENDANT:
            root_only = False
        elif step.axis is Axis.CHILD:
            root_only = True
        else:
            raise LPathCompileError(
                f"a query cannot start with the {step.axis.value} axis"
            )
        if step.test.is_wildcard:
            if root_only:
                return Source(
                    lambda: (r for r in self.table.scan() if r[P] == 0 and _is_element(r)),
                    "xpath roots",
                )
            return Source(
                lambda: (r for r in self.table.scan() if _is_element(r)),
                "xpath all elements",
            )
        name = step.test.name
        if root_only:
            return Source(
                lambda: (r for r in self.clustered.scan_eq((name,)) if r[P] == 0),
                f"xpath roots named {name}",
            )
        return Source(
            lambda: self.clustered.scan_eq((name,)), f"xpath elements named {name}"
        )

    def _value_seed(self, step: Step):
        """Seed the first step from the {value, tid, id} index when it has a
        direct [@attr = literal] predicate (shared with the LPath engine —
        'other components of both labeling schemes are the same')."""
        from ..lpath.compiler import _find_attribute_equality

        if step.axis is not Axis.DESCENDANT:
            return None
        found = _find_attribute_equality(step.predicates)
        if found is None:
            return None
        attr_name, literal = found
        name_test = None if step.test.is_wildcard else step.test.name
        by_value = self.by_value
        by_tid_id = self.by_tid_id

        def rows():
            for attr_row in by_value.scan_eq((literal,)):
                if attr_row[N] != attr_name:
                    continue
                for element in by_tid_id.scan_eq((attr_row[T], attr_row[I])):
                    if not _is_element(element):
                        continue
                    if name_test is not None and element[N] != name_test:
                        continue
                    yield element

        return Source(rows, f"xpath value seed {attr_name}={literal!r}")

    def _step_exec(self, step: Step, ctx_base: int, cand_base: int) -> _Step:
        probe, residuals = self._probe(step, ctx_base, cand_base)
        checks = list(residuals)
        checks.extend(self._predicate_checks(step, cand_base))
        return _Step(probe, checks)

    def _probe(self, step: Step, ctx_base: int, cand_base: int):
        axis, test = step.axis, step.test
        ct, cs, ce, cd, cid, cpid = (
            ctx_base + T, ctx_base + S, ctx_base + E,
            ctx_base + D, ctx_base + I, ctx_base + P,
        )
        xe, xd, xp, xn = cand_base + E, cand_base + D, cand_base + P, cand_base + N
        residuals: list[BindingCheck] = []

        if axis is Axis.ATTRIBUTE:
            by_tid_id = self.by_tid_id
            probe = lambda b: by_tid_id.scan_eq((b[ct], b[cid]))
            if test.is_wildcard:
                residuals.append(lambda b: b[xn].startswith("@"))
            else:
                wanted = "@" + test.name
                residuals.append(lambda b, wanted=wanted: b[xn] == wanted)
            return probe, residuals
        if axis is Axis.PARENT:
            by_tid_id = self.by_tid_id
            probe = lambda b: by_tid_id.scan_eq((b[ct], b[cpid]))
            residuals.append(self._name_check(test, xn))
            return probe, residuals
        found = None
        if axis is not Axis.SELF:
            from ..lpath.compiler import _find_attribute_equality

            found = _find_attribute_equality(step.predicates)
        if found is not None:
            attr_name, literal = found
            by_tid_value = self.table.index("idx_tid_value_id")
            by_tid_id = self.by_tid_id
            name_test = None if test.is_wildcard else test.name

            def probe(b, ct=ct, attr_name=attr_name, literal=literal,
                      by_tid_value=by_tid_value, by_tid_id=by_tid_id,
                      name_test=name_test):
                for attr_row in by_tid_value.scan_eq((b[ct], literal)):
                    if attr_row[N] != attr_name:
                        continue
                    for element in by_tid_id.scan_eq((b[ct], attr_row[I])):
                        if not _is_element(element):
                            continue
                        if name_test is not None and element[N] != name_test:
                            continue
                        yield element

            residuals.extend(self._axis_residuals(axis, ctx_base, cand_base))
            return probe, residuals
        if test.is_wildcard:
            by_tid_id = self.by_tid_id
            probe = lambda b: by_tid_id.scan_eq((b[ct],))
            residuals.append(lambda b: not b[xn].startswith("@"))
            residuals.extend(self._axis_residuals(axis, ctx_base, cand_base))
            return probe, residuals

        name = test.name
        clustered = self.clustered
        if axis in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            include_low = axis is Axis.DESCENDANT_OR_SELF
            probe = lambda b: clustered.scan_range(
                (name, b[ct]), low=b[cs], high=b[ce],
                include_low=include_low, include_high=False,
            )
            if axis is Axis.CHILD:
                residuals.append(lambda b: b[xp] == b[cid])
            elif axis is Axis.DESCENDANT:
                residuals.append(lambda b: b[xe] < b[ce])
            else:
                residuals.append(lambda b: b[xe] <= b[ce])
        elif axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
            include_high = axis is Axis.ANCESTOR_OR_SELF
            probe = lambda b: clustered.scan_range(
                (name, b[ct]), high=b[cs], include_high=include_high
            )
            if axis is Axis.ANCESTOR:
                residuals.append(lambda b: b[xe] > b[ce])
            else:
                residuals.append(lambda b: b[xe] >= b[ce])
        elif axis is Axis.FOLLOWING:
            probe = lambda b: clustered.scan_range(
                (name, b[ct]), low=b[ce], include_low=False
            )
        elif axis is Axis.PRECEDING:
            probe = lambda b: clustered.scan_range(
                (name, b[ct]), high=b[cs], include_high=False
            )
            residuals.append(lambda b: b[xe] < b[cs])
        elif axis is Axis.FOLLOWING_SIBLING:
            probe = lambda b: clustered.scan_range(
                (name, b[ct]), low=b[ce], include_low=False
            )
            residuals.append(lambda b: b[xp] == b[cpid])
        elif axis is Axis.PRECEDING_SIBLING:
            probe = lambda b: clustered.scan_range(
                (name, b[ct]), high=b[cs], include_high=False
            )
            residuals.append(lambda b: b[xp] == b[cpid] and b[xe] < b[cs])
        else:  # pragma: no cover
            raise LPathCompileError(f"unsupported axis {axis.value}")
        return probe, residuals

    def _name_check(self, test, name_position: int) -> BindingCheck:
        if test.is_wildcard:
            return lambda b: not b[name_position].startswith("@")
        name = test.name
        return lambda b, name=name: b[name_position] == name

    def _axis_residuals(self, axis: Axis, ctx_base: int, cand_base: int):
        ct_s, ct_e, ct_d, ct_id, ct_pid = (
            ctx_base + S, ctx_base + E, ctx_base + D, ctx_base + I, ctx_base + P
        )
        x_s, x_e, x_d, x_p = cand_base + S, cand_base + E, cand_base + D, cand_base + P
        if axis is Axis.CHILD:
            return [lambda b: b[x_p] == b[ct_id]]
        if axis is Axis.DESCENDANT:
            return [lambda b: b[ct_s] < b[x_s] and b[x_e] < b[ct_e]]
        if axis is Axis.DESCENDANT_OR_SELF:
            return [lambda b: b[ct_s] <= b[x_s] and b[x_e] <= b[ct_e]]
        if axis is Axis.ANCESTOR:
            return [lambda b: b[x_s] < b[ct_s] and b[ct_e] < b[x_e]]
        if axis is Axis.ANCESTOR_OR_SELF:
            return [lambda b: b[x_s] <= b[ct_s] and b[ct_e] <= b[x_e]]
        if axis is Axis.FOLLOWING:
            return [lambda b: b[x_s] > b[ct_e]]
        if axis is Axis.PRECEDING:
            return [lambda b: b[x_e] < b[ct_s]]
        if axis is Axis.FOLLOWING_SIBLING:
            return [lambda b: b[x_p] == b[ct_pid] and b[x_s] > b[ct_e]]
        if axis is Axis.PRECEDING_SIBLING:
            return [lambda b: b[x_p] == b[ct_pid] and b[x_e] < b[ct_s]]
        raise LPathCompileError(f"unsupported axis {axis.value}")

    # -- predicates ----------------------------------------------------------------

    def _self_checks(self, step: Step, base: int, free: int):
        checks = []
        if not step.test.is_wildcard:
            name = step.test.name
            position = base + N
            checks.append(lambda b, p=position, n=name: b[p] == n)
        checks.extend(self._predicate_checks(step, base))
        return checks

    def _predicate_checks(self, step: Step, base: int) -> list[BindingCheck]:
        checks = []
        for predicate in step.predicates:
            checks.append(self._boolean(predicate, base, base + ROW_WIDTH))
        return checks

    def _boolean(self, expr: PredicateExpr, ctx_base: int, free: int) -> BindingCheck:
        if isinstance(expr, OrExpr):
            parts = [self._boolean(p, ctx_base, free) for p in expr.parts]
            return lambda b: any(part(b) for part in parts)
        if isinstance(expr, AndExpr):
            parts = [self._boolean(p, ctx_base, free) for p in expr.parts]
            return lambda b: all(part(b) for part in parts)
        if isinstance(expr, NotExpr):
            inner = self._boolean(expr.part, ctx_base, free)
            return lambda b: not inner(b)
        if isinstance(expr, PathExists):
            runner = self._subpath(expr.path, ctx_base, free)
            return lambda b: next(runner(b), None) is not None
        if isinstance(expr, Comparison):
            return self._comparison(expr, ctx_base, free)
        raise LPathCompileError(
            f"predicate {expr} is not supported by the XPath baseline engine"
        )

    def _comparison(self, expr: Comparison, ctx_base: int, free: int) -> BindingCheck:
        left, op, right = expr.left, expr.op, expr.right
        if isinstance(left, FunctionCall) and left.name == "name" and isinstance(right, (Literal, Number)):
            wanted = right.value if isinstance(right, Literal) else str(right.value)
            position = ctx_base + N
            if op == "=":
                return lambda b: b[position] == wanted
            if op == "!=":
                return lambda b: b[position] != wanted
            raise LPathCompileError("name() only supports = and !=")
        if isinstance(left, PathExists) and isinstance(right, (Literal, Number)):
            runner = self._subpath(left.path, ctx_base, free)
            return _value_check(runner, op, right)
        if isinstance(right, PathExists) and isinstance(left, (Literal, Number)):
            flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}
            runner = self._subpath(right.path, ctx_base, free)
            return _value_check(runner, flipped[op], left)
        raise LPathCompileError(
            f"comparison {expr} is not supported by the XPath baseline engine"
        )

    def _subpath(self, path: Path, ctx_base: int, free: int):
        plan: list = []
        base = ctx_base
        next_free = free
        for item in path.items:
            if isinstance(item, Scope):
                raise LPathCompileError("scoping is not expressible in XPath")
            if item.axis is Axis.SELF:
                plan.append(("filter", self._self_checks(item, base, next_free)))
                continue
            exec_ = self._step_exec(item, base, next_free)
            plan.append(("join", exec_))
            base = next_free
            next_free += ROW_WIDTH

        def run(binding: tuple, compiled=tuple(plan)):
            return _run(binding, compiled, 0)

        return run


def _run(binding: tuple, plan: tuple, index: int):
    if index == len(plan):
        yield binding
        return
    kind, payload = plan[index]
    if kind == "filter":
        if all(check(binding) for check in payload):
            yield from _run(binding, plan, index + 1)
        return
    for row in payload.matches(binding):
        yield from _run(binding + row, plan, index + 1)


def _value_check(runner, op: str, literal) -> BindingCheck:
    wanted = literal.value
    numeric = isinstance(literal, Number) or op in ("<", "<=", ">", ">=")

    def check(binding: tuple) -> bool:
        for extended in runner(binding):
            row = extended[-ROW_WIDTH:]
            if not row[N].startswith("@"):
                continue  # element string values unsupported in this baseline
            value = row[V] if row[V] is not None else ""
            if numeric:
                try:
                    number = float(value.strip())
                    target = float(wanted)
                except (TypeError, ValueError):
                    continue
                if _num(number, op, target):
                    return True
            elif (value == wanted) == (op == "="):
                return True
        return False

    return check


def _num(left: float, op: str, right: float) -> bool:
    return {
        "=": left == right,
        "!=": left != right,
        "<": left < right,
        "<=": left <= right,
        ">": left > right,
        ">=": left >= right,
    }[op]


def _paths_in(expr: PredicateExpr):
    """Every step nested in a predicate expression (for validation)."""
    if isinstance(expr, (OrExpr, AndExpr)):
        for part in expr.parts:
            yield from _paths_in(part)
    elif isinstance(expr, NotExpr):
        yield from _paths_in(expr.part)
    elif isinstance(expr, Comparison):
        yield from _paths_in(expr.left)
        yield from _paths_in(expr.right)
    elif isinstance(expr, PathExists):
        yield from expr.path.items
