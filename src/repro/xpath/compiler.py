"""Query compiler for the baseline XPath engine (start/end labeling, [11]).

Shares the whole compilation pipeline with :mod:`repro.lpath.compiler`
through the unified IR in :mod:`repro.plan`: :class:`XPathPlanCompiler`
is :class:`~repro.lpath.compiler.PlanCompiler` with the
:class:`~repro.plan.schemes.StartEndScheme` axis semantics over the
relation ``xnode(tid, start, end, depth, id, pid, name, value)``.  Only
the XPath-expressible axes are supported; the immediate-* axes, subtree
scoping and edge alignment raise
:class:`~repro.lpath.errors.LPathCompileError` — this asymmetry is exactly
what Figure 10 measures (same cost on shared queries, fewer supported
queries).
"""

from __future__ import annotations

from ..lpath.compiler import CompiledQuery, PlanCompiler
from ..plan.schemes import StartEndScheme, VERTICAL_FRAGMENT, XPATH_AXES
from ..relational.table import Table

__all__ = ["VERTICAL_FRAGMENT", "XPATH_AXES", "XPathCompiledQuery", "XPathPlanCompiler"]


class XPathCompiledQuery(CompiledQuery):
    """Executable plan over the start/end label relation."""


class XPathPlanCompiler(PlanCompiler):
    """Compile the XPath-expressible fragment against the xnode relation
    (a row table, or a column store for row-less mmap-backed engines)."""

    dialect = "XPath"
    result_class = XPathCompiledQuery

    def __init__(
        self,
        table: Table = None,
        axes: frozenset = VERTICAL_FRAGMENT,
        column_store=None,
    ) -> None:
        self.axes = axes
        super().__init__(
            table, scheme=StartEndScheme(axes), column_store=column_store
        )
