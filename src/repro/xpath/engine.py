"""The baseline XPath engine (Section 5.4).

Identical machinery to the LPath engine — same mini relational engine, same
clustering and secondary indexes, and (since the unified-IR refactor) the
same logical-plan compiler, optimizer and interpreter from
:mod:`repro.plan` — but labels come from the start/end scheme of [11].
Per the paper: "To compare the performance, we set other components of
both labeling schemes to be the same."
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..labeling import xpath_scheme
from ..lpath.ast import Path
from ..lpath.errors import LPathError
from ..plan.cache import PlanCache, cached_compile
from ..plan.segmented import (
    RemoteSpec,
    Segment,
    SegmentPool,
    SegmentedPlanCompiler,
    validate_segmentation,
)
from ..relational.database import Database
from ..relational.table import Table
from ..store import partition_rows_by_tid
from ..tree.node import Tree
from .compiler import (
    VERTICAL_FRAGMENT,
    XPATH_AXES,
    XPathCompiledQuery,
    XPathPlanCompiler,
)

XNODE_COLUMNS = ("tid", "start", "end", "depth", "id", "pid", "name", "value")
XNODE_CLUSTERED_KEY = ("name", "tid", "start", "end", "depth", "id", "pid")
XNODE_SECONDARY_INDEXES = {
    "idx_tid_value_id": ("tid", "value", "id"),
    "idx_value_tid_id": ("value", "tid", "id"),
    "idx_tid_id": ("tid", "id", "start", "end", "depth", "pid"),
}

Query = Union[str, Path]


def create_xnode_table(db: Database, rows, name: str = "xnode") -> Table:
    """Load the start/end label relation with the shared physical design."""
    table = db.create_table(name, XNODE_COLUMNS, XNODE_CLUSTERED_KEY)
    table.load(rows)
    for index_name, columns in XNODE_SECONDARY_INDEXES.items():
        table.create_index(index_name, columns)
    return table


class XPathEngine:
    """Query a corpus with the XPath-expressible fragment of LPath syntax."""

    def __init__(
        self,
        trees: Sequence[Tree],
        axes: frozenset = VERTICAL_FRAGMENT,
        plan_cache_size: int = 128,
        executor: str = "volcano",
        segments: int = 1,
        workers: Optional[int] = None,
    ) -> None:
        from ..lpath.compiler import EXECUTORS

        if executor not in EXECUTORS:
            raise LPathError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        validate_segmentation(segments, workers)
        self.trees = list(trees)
        tids = [tree.tid for tree in self.trees]
        if len(set(tids)) != len(tids):
            raise LPathError("trees must have distinct tids")
        rows = [tuple(row) for row in xpath_scheme.label_corpus(self.trees)]
        self.executor = executor
        self.segments = segments
        self.workers = workers
        self.mode = "thread"
        self._mapped = None
        self._pool = SegmentPool(workers, segments)
        if segments == 1:
            self.database = Database("xpath")
            self.xnode_table = create_xnode_table(self.database, rows)
            self._compiler = XPathPlanCompiler(self.xnode_table, axes=axes)
        else:
            self.database = None
            self.xnode_table = None
            parts = []
            for index, shard in enumerate(partition_rows_by_tid(rows, segments)):
                database = Database(f"xpath-seg{index}")
                table = create_xnode_table(database, shard)
                parts.append(
                    Segment(
                        index, XPathPlanCompiler(table, axes=axes), len(shard)
                    )
                )
            self._compiler = SegmentedPlanCompiler(parts, get_pool=self._pool)
        self.plan_cache = PlanCache(plan_cache_size)

    @classmethod
    def from_store_mmap(
        cls,
        path: str,
        axes: frozenset = VERTICAL_FRAGMENT,
        plan_cache_size: int = 128,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> "XPathEngine":
        """Open an ``LPDB0004`` file of *start/end-labeled* rows zero-copy
        (save one with ``repro.labeling.xpath_scheme.label_corpus`` rows
        and ``save_labels(format='lpdb0004')``).  Columnar-only — no row
        table, no trees.  ``mode`` as in
        :meth:`repro.lpath.LPathEngine.from_store_mmap` (process default
        when ``workers > 1``); :meth:`close` unmaps the file."""
        from ..columnar.store import MappedColumnStore
        from ..store import open_mapped_corpus
        from .compiler import XPathPlanCompiler

        validate_segmentation(1, workers, mode)
        if mode is None:
            mode = "process" if workers is not None and workers > 1 else "thread"
        corpus = open_mapped_corpus(path)
        try:
            stores = [
                MappedColumnStore(segment, column_names=XNODE_COLUMNS)
                for segment in corpus.segments
            ]
            validate_segmentation(len(stores), workers)
            engine = cls.__new__(cls)
            engine.trees = []
            engine.executor = "columnar"
            engine.segments = len(stores)
            engine.workers = workers
            engine.mode = mode
            engine._mapped = corpus
            engine._pool = SegmentPool(workers, len(stores), mode=mode)
            engine.database = None
            engine.xnode_table = None
            if len(stores) == 1:
                engine._compiler = XPathPlanCompiler(
                    column_store=stores[0], axes=axes
                )
            else:
                engine._compiler = SegmentedPlanCompiler(
                    [
                        Segment(
                            index,
                            XPathPlanCompiler(column_store=store, axes=axes),
                            len(store),
                        )
                        for index, store in enumerate(stores)
                    ],
                    get_pool=engine._pool,
                    remote=RemoteSpec(
                        path, "XPath",
                        tuple(sorted(axis.name for axis in axes)),
                    ),
                )
            engine.plan_cache = PlanCache(plan_cache_size)
        except BaseException:
            corpus.close()
            raise
        return engine

    def compile(
        self,
        query: Query,
        pivot: bool = False,
        executor: Optional[str] = None,
        limit: Optional[int] = None,
        agg: Optional[str] = None,
    ):
        """Compile to a shared-IR plan, via the per-engine plan cache."""
        if self._compiler is None:
            raise LPathError("engine is closed")
        return cached_compile(
            self.plan_cache,
            self._compiler,
            query,
            pivot,
            executor=executor if executor is not None else self.executor,
            limit=limit,
            agg=agg,
        )

    def query(
        self,
        query: Query,
        pivot: bool = False,
        executor: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[int, int]]:
        """Distinct, sorted ``(tid, id)`` pairs matching the query
        (``limit=k`` compiles an early-terminating top-k plan)."""
        compiled = self.compile(
            query, pivot=pivot, executor=executor, limit=limit
        )
        return [tuple(row) for row in compiled.rows()]

    def aggregate(
        self,
        query: Query,
        agg: str = "count",
        pivot: bool = False,
        executor: Optional[str] = None,
    ) -> dict:
        """Evaluate an aggregate without materializing rows (same
        contract as :meth:`repro.lpath.LPathEngine.aggregate`)."""
        return self.compile(
            query, pivot=pivot, executor=executor, agg=agg
        ).aggregate()

    def query_batch(
        self,
        queries: Sequence,
        pivot: bool = False,
        executor: Optional[str] = None,
    ) -> list:
        """Shared-scan batch execution (same contract as
        :meth:`repro.lpath.LPathEngine.query_batch`)."""
        from ..plan.batch import run_batch

        return run_batch(self._compile_batch(queries, pivot, executor))

    def explain_batch(
        self,
        queries: Sequence,
        pivot: bool = False,
        executor: Optional[str] = None,
    ) -> str:
        """Render the shared-scan DAG :meth:`query_batch` would execute."""
        from ..plan.batch import explain_batch

        return explain_batch(self._compile_batch(queries, pivot, executor))

    def _compile_batch(
        self, queries: Sequence, pivot: bool, executor: Optional[str]
    ) -> list:
        if self._compiler is None:
            raise LPathError("engine is closed")
        compiled = []
        for entry in queries:
            options = {"pivot": pivot}
            if isinstance(entry, dict):
                spec = dict(entry)
                query = spec.pop("query", None)
                if query is None:
                    raise LPathError("batch entry mapping needs a 'query' key")
                unknown = set(spec) - {"limit", "agg", "pivot"}
                if unknown:
                    raise LPathError(
                        f"unknown batch entry keys: {', '.join(sorted(unknown))}"
                    )
                options.update(spec)
            else:
                query = entry
            compiled.append(self.compile(query, executor=executor, **options))
        return compiled

    def count(
        self, query: Query, pivot: bool = False, executor: Optional[str] = None
    ) -> int:
        """Result-set size, counted through the compiled plan (segmented
        engines add per-segment counts; process-mode engines return one
        integer per worker instead of shipping the rows)."""
        return self.compile(query, pivot=pivot, executor=executor).count()

    def explain(
        self, query: Query, pivot: bool = False, executor: Optional[str] = None,
        limit: Optional[int] = None, agg: Optional[str] = None,
    ) -> str:
        """Logical-IR and physical plan description (same IR format as the
        LPath engine)."""
        return self.compile(
            query, pivot=pivot, executor=executor, limit=limit, agg=agg
        ).explain()

    def cache_stats(self) -> dict[str, int]:
        """Plan-cache observability: hits, misses, evictions, size and
        capacity of this engine's LRU plan cache."""
        return self.plan_cache.stats

    def close(self) -> None:
        """Release the worker pool, cached plans, relational stores and
        (for mmap-backed engines) the file mapping, so a closed engine is
        promptly garbage-collectable.  Idempotent."""
        self._pool.shutdown()
        self.plan_cache.clear()
        self.database = None
        self.xnode_table = None
        self._compiler = None
        self.trees = []
        mapped = getattr(self, "_mapped", None)
        if mapped is not None:
            mapped.close()
            self._mapped = None

    def __enter__(self) -> "XPathEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
