"""The baseline XPath engine (Section 5.4).

Identical machinery to the LPath engine — same mini relational engine, same
clustering and secondary indexes, and (since the unified-IR refactor) the
same logical-plan compiler, optimizer and interpreter from
:mod:`repro.plan` — but labels come from the start/end scheme of [11].
Per the paper: "To compare the performance, we set other components of
both labeling schemes to be the same."
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..labeling import xpath_scheme
from ..lpath.ast import Path
from ..lpath.errors import LPathError
from ..plan.cache import PlanCache, cached_compile
from ..plan.segmented import (
    Segment,
    SegmentPool,
    SegmentedPlanCompiler,
    validate_segmentation,
)
from ..relational.database import Database
from ..relational.table import Table
from ..store import partition_rows_by_tid
from ..tree.node import Tree
from .compiler import (
    VERTICAL_FRAGMENT,
    XPATH_AXES,
    XPathCompiledQuery,
    XPathPlanCompiler,
)

XNODE_COLUMNS = ("tid", "start", "end", "depth", "id", "pid", "name", "value")
XNODE_CLUSTERED_KEY = ("name", "tid", "start", "end", "depth", "id", "pid")
XNODE_SECONDARY_INDEXES = {
    "idx_tid_value_id": ("tid", "value", "id"),
    "idx_value_tid_id": ("value", "tid", "id"),
    "idx_tid_id": ("tid", "id", "start", "end", "depth", "pid"),
}

Query = Union[str, Path]


def create_xnode_table(db: Database, rows, name: str = "xnode") -> Table:
    """Load the start/end label relation with the shared physical design."""
    table = db.create_table(name, XNODE_COLUMNS, XNODE_CLUSTERED_KEY)
    table.load(rows)
    for index_name, columns in XNODE_SECONDARY_INDEXES.items():
        table.create_index(index_name, columns)
    return table


class XPathEngine:
    """Query a corpus with the XPath-expressible fragment of LPath syntax."""

    def __init__(
        self,
        trees: Sequence[Tree],
        axes: frozenset = VERTICAL_FRAGMENT,
        plan_cache_size: int = 128,
        executor: str = "volcano",
        segments: int = 1,
        workers: Optional[int] = None,
    ) -> None:
        from ..lpath.compiler import EXECUTORS

        if executor not in EXECUTORS:
            raise LPathError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        validate_segmentation(segments, workers)
        self.trees = list(trees)
        tids = [tree.tid for tree in self.trees]
        if len(set(tids)) != len(tids):
            raise LPathError("trees must have distinct tids")
        rows = [tuple(row) for row in xpath_scheme.label_corpus(self.trees)]
        self.executor = executor
        self.segments = segments
        self.workers = workers
        self._pool = SegmentPool(workers, segments)
        if segments == 1:
            self.database = Database("xpath")
            self.xnode_table = create_xnode_table(self.database, rows)
            self._compiler = XPathPlanCompiler(self.xnode_table, axes=axes)
        else:
            self.database = None
            self.xnode_table = None
            parts = []
            for index, shard in enumerate(partition_rows_by_tid(rows, segments)):
                database = Database(f"xpath-seg{index}")
                table = create_xnode_table(database, shard)
                parts.append(
                    Segment(
                        index, XPathPlanCompiler(table, axes=axes), len(shard)
                    )
                )
            self._compiler = SegmentedPlanCompiler(parts, get_pool=self._pool)
        self.plan_cache = PlanCache(plan_cache_size)

    def compile(
        self, query: Query, pivot: bool = False, executor: Optional[str] = None
    ):
        """Compile to a shared-IR plan, via the per-engine plan cache."""
        if self._compiler is None:
            raise LPathError("engine is closed")
        return cached_compile(
            self.plan_cache,
            self._compiler,
            query,
            pivot,
            executor=executor if executor is not None else self.executor,
        )

    def query(
        self, query: Query, pivot: bool = False, executor: Optional[str] = None
    ) -> list[tuple[int, int]]:
        """Distinct, sorted ``(tid, id)`` pairs matching the query."""
        return [
            tuple(row)
            for row in self.compile(query, pivot=pivot, executor=executor).rows()
        ]

    def count(
        self, query: Query, pivot: bool = False, executor: Optional[str] = None
    ) -> int:
        """Result-set size."""
        return len(self.query(query, pivot=pivot, executor=executor))

    def explain(
        self, query: Query, pivot: bool = False, executor: Optional[str] = None
    ) -> str:
        """Logical-IR and physical plan description (same IR format as the
        LPath engine)."""
        return self.compile(query, pivot=pivot, executor=executor).explain()

    def cache_stats(self) -> dict[str, int]:
        """Plan-cache observability: hits, misses, evictions, size and
        capacity of this engine's LRU plan cache."""
        return self.plan_cache.stats

    def close(self) -> None:
        """Release the worker pool, cached plans and relational stores so
        a closed engine is promptly garbage-collectable.  Idempotent."""
        self._pool.shutdown()
        self.plan_cache.clear()
        self.database = None
        self.xnode_table = None
        self._compiler = None
        self.trees = []

    def __enter__(self) -> "XPathEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
