"""Baseline XPath engine over the start/end labeling scheme."""

from .compiler import VERTICAL_FRAGMENT, XPATH_AXES, XPathPlanCompiler
from .engine import XPathEngine, create_xnode_table

__all__ = [
    "VERTICAL_FRAGMENT",
    "XPATH_AXES",
    "XPathEngine",
    "XPathPlanCompiler",
    "create_xnode_table",
]
