"""Serving layer: a long-lived query daemon over compiled corpora.

The library engines answer one process's queries; this package makes
them a *service* — shared mmap-backed engines behind a threaded HTTP
daemon with admission control, per-query deadlines, pagination and a
result cache.  ``repro serve <store>`` starts one from the CLI;
``repro query --url`` talks to it.

* :class:`QueryService` — engines, admission, cache, quarantine and
  circuit-breaker load shedding (transport-free);
* :class:`QueryServer` — the stdlib HTTP daemon around a service;
* :class:`ServeClient` — a paginating keep-alive client with
  reconnect-and-retry plus capped, jittered exponential backoff;
* :class:`ResultCache` — the LRU of integrity-checked result sets;
* :class:`CircuitBreaker` — the sliding-window breaker behind 429
  shedding.
"""

from .cache import ResultCache
from .client import ServeClient, ServeClientError
from .daemon import QueryServer
from .service import (
    DIALECTS,
    CircuitBreaker,
    QueryService,
    ServeError,
    StoreSpec,
)

__all__ = [
    "DIALECTS",
    "CircuitBreaker",
    "QueryServer",
    "QueryService",
    "ResultCache",
    "ServeClient",
    "ServeClientError",
    "ServeError",
    "StoreSpec",
]
