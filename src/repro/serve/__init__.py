"""Serving layer: a long-lived query daemon over compiled corpora.

The library engines answer one process's queries; this package makes
them a *service* — shared mmap-backed engines behind a threaded HTTP
daemon with admission control, per-query deadlines, pagination and a
result cache.  ``repro serve <store>`` starts one from the CLI;
``repro query --url`` talks to it.

* :class:`QueryService` — engines, admission, cache (transport-free);
* :class:`QueryServer` — the stdlib HTTP daemon around a service;
* :class:`ServeClient` — a paginating keep-alive client;
* :class:`ResultCache` — the LRU of materialized result sets.
"""

from .cache import ResultCache
from .client import ServeClient, ServeClientError
from .daemon import QueryServer
from .service import DIALECTS, QueryService, ServeError, StoreSpec

__all__ = [
    "DIALECTS",
    "QueryServer",
    "QueryService",
    "ResultCache",
    "ServeClient",
    "ServeClientError",
    "ServeError",
    "StoreSpec",
]
