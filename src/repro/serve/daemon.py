"""The HTTP face of the query service (stdlib ``http.server`` only).

``QueryServer`` wraps a :class:`~repro.serve.service.QueryService` in a
``ThreadingHTTPServer``: one handler thread per connection, HTTP/1.1
keep-alive (every response carries ``Content-Length``), JSON in and out.

Endpoints::

    GET  /healthz                  liveness: {"status": "ok" | "draining"},
                                   always 200 while the process can answer
    GET  /readyz                   readiness: actively re-verifies every
                                   store's on-disk bytes; 200 when at least
                                   one store is healthy and not draining,
                                   503 (+ Retry-After) otherwise
    GET  /stats                    server/result-cache/plan-cache/kernel stats
    GET  /query?q=//NP&count=1     query via the query string
    POST /query                    {"query": ..., "dialect": ..., "pivot": ...,
                                    "count": ..., "limit": ..., "offset": ...,
                                    "top_k": ..., "agg": ...,
                                    "store": ..., "timeout_ms": ...}
    POST /batch                    {"queries": ["//NP", {"query": ...,
                                    "top_k": ..., "agg": ...}, ...], plus
                                    batch-wide dialect/store/pivot/timeout_ms}
                                   -> NDJSON stream, one document per query
                                   as it completes (shared-scan execution),
                                   then a summary document

Every error is a JSON document ``{"error": "..."}`` with the status the
service chose (400 bad request, 404 unknown store/path, 429 over
capacity or breaker open, 503 draining/closed/quarantined, 504
deadline) — clients never see a traceback.  Transient errors (429/503)
carry ``"transient": true`` and, when the service knows how long the
condition lasts, a ``Retry-After`` header in seconds.  Large result
pages are written to the socket in bounded chunks rather than one giant
``bytes``.

The ``socket_reset`` fault point (:mod:`repro.faults`) bites here: a
fired checkpoint abandons a ``/query``/``/batch`` response before a
byte is written, so clients exercise their reconnect-and-retry path
against a real dropped connection.  ``/healthz`` is deliberately out of
its blast radius — liveness must stay honest under chaos.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from ..faults import maybe_reset_socket
from ..lpath.errors import LPathError
from .service import QueryService, ServeError

#: Socket-write granularity for big pages.
_CHUNK_BYTES = 64 * 1024
#: Request bodies past this are refused (a query is text, not a corpus).
_MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"
    # Status line, headers and body leave in separate send() calls;
    # with Nagle on, the tail of the response sits behind the peer's
    # delayed ACK (~40ms) — fatal for a sub-millisecond cache hit.
    disable_nagle_algorithm = True

    # -- plumbing -----------------------------------------------------------

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _respond(
        self, status: int, payload: dict, retry_after: "float | None" = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # Whole seconds per RFC 9110; never 0, or clients busy-loop.
            self.send_header("Retry-After", str(max(1, round(retry_after))))
        self.end_headers()
        for start in range(0, len(body), _CHUNK_BYTES):
            self.wfile.write(body[start:start + _CHUNK_BYTES])

    def _abandon(self) -> None:
        """The fired ``socket_reset`` path: drop the connection without
        writing a byte, the way a crashed peer or a mid-flight network
        cut looks to the client."""
        self.close_connection = True
        try:
            # RST on close rather than FIN: the abrupt variant.
            self.connection.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:  # pragma: no cover - best effort
            pass

    def _respond_stream(self, documents) -> None:
        """Stream NDJSON documents with chunked transfer encoding — one
        chunk per document, flushed as each batch member completes, so
        clients see results incrementally (``http.client`` de-chunks
        transparently)."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        for document in documents:
            data = (json.dumps(document) + "\n").encode("utf-8")
            self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
            self.wfile.write(data)
            self.wfile.write(b"\r\n")
            self.wfile.flush()
        self.wfile.write(b"0\r\n\r\n")

    def _handle(self, params_from) -> None:
        route = None
        started = time.perf_counter()
        try:
            route, params = params_from()
            if route in ("/query", "/batch") and maybe_reset_socket():
                self._abandon()
                return
            if route == "/healthz":
                self._respond(200, self.service.health())
            elif route == "/readyz":
                ready, payload = self.service.readiness()
                self._respond(
                    200 if ready else 503, payload,
                    retry_after=(
                        None if ready
                        else self.service.store_retry_after
                    ),
                )
            elif route == "/stats":
                self._respond(200, self.service.stats())
            elif route == "/query":
                self._respond(200, self.service.execute(params))
            elif route == "/batch":
                self._respond_stream(self.service.execute_batch(params))
            elif route == "/append":
                if self.command != "POST":
                    self._respond(
                        405, {"error": "/append takes POST with a JSON body"}
                    )
                else:
                    self._respond(200, self.service.execute_append(params))
            else:
                self._respond(404, {"error": f"unknown path {route!r}"})
        except ServeError as error:
            payload = {"error": str(error)}
            if error.transient:
                payload["transient"] = True
            self._respond(
                error.status, payload, retry_after=error.retry_after
            )
        except LPathError as error:
            self._respond(400, {"error": str(error)})
        except BrokenPipeError:  # client went away mid-response
            self.close_connection = True
        except Exception as error:  # noqa: BLE001 — no tracebacks to clients
            self._respond(
                500, {"error": f"{type(error).__name__}: {error}"}
            )
        finally:
            if route in (
                "/healthz", "/readyz", "/stats", "/query", "/batch",
                "/append",
            ):
                self.service.record_latency(
                    route, time.perf_counter() - started
                )

    # -- verbs --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        def params():
            parts = urlsplit(self.path)
            return parts.path, dict(parse_qsl(parts.query))

        self._handle(params)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        def params():
            route = urlsplit(self.path).path
            length = int(self.headers.get("Content-Length") or 0)
            if length > _MAX_BODY_BYTES:
                raise ServeError(
                    400, f"request body too large ({length} bytes)"
                )
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ServeError(400, f"invalid JSON body: {error}")
            if not isinstance(body, dict):
                raise ServeError(400, "JSON body must be an object")
            return route, body

        self._handle(params)


class QueryServer:
    """A query daemon bound to one address, serving one
    :class:`QueryService`.

    ``port=0`` binds an ephemeral port (tests and benchmarks); the bound
    address is ``url``.  :meth:`start` serves from a background thread
    (in-process tests, the load benchmark); :meth:`serve_forever` serves
    from the calling thread (the CLI).  :meth:`close` drains in-flight
    queries through the service before tearing the listener down, and is
    idempotent."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.service = service  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: "threading.Thread | None" = None
        self._serving = threading.Event()
        self._closed = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve from the calling thread until :meth:`close` (or, in the
        CLI, KeyboardInterrupt unwinds into a drained shutdown)."""
        self._serving.set()
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "QueryServer":
        """Serve from a daemon background thread; returns self."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def close(self, drain_timeout: float = 10.0) -> None:
        """Drain, then stop: new queries 503 immediately, running ones
        get ``drain_timeout`` seconds to finish, then the listener and
        every engine shut down.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.service.close(drain_timeout=drain_timeout)
        if self._serving.is_set():
            # shutdown() handshakes with serve_forever; calling it when
            # the loop never ran would wait on an event nobody sets.
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
