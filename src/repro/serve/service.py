"""The transport-agnostic query service behind the daemon.

One :class:`QueryService` owns:

* a registry of **shared engines**, one per served store path, opened
  once (mmap-backed for ``LPDB0004`` files) and queried concurrently by
  every request thread — the plan cache is lock-protected and compiled
  plans are stateless, so one engine serves any number of threads;
* **admission control** — at most ``max_inflight`` queries execute at
  once; up to ``max_queue`` more wait (their queue time counts against
  their deadline); anything beyond that is rejected immediately with
  HTTP 429 semantics, so overload degrades to fast rejections instead of
  unbounded latency;
* a **per-query deadline** with cooperative cancellation — the request
  thread waits on the executing future for the deadline's remainder and
  answers 504 on expiry; the worker observes the cancellation at its
  checkpoints (on dequeue, after execution) so an abandoned query never
  populates the result cache and a queued-but-expired query never
  executes at all;
* the **result cache** (:mod:`repro.serve.cache`) keyed on
  ``(store fingerprint, dialect, query, pivot, kernels, force-join)`` —
  hits bypass admission control entirely, which is what makes hot
  repeated queries cheap enough for the serving benchmark's QPS floor.

Errors are typed by :class:`ServeError` carrying an HTTP status; engine
and parse errors (:class:`~repro.lpath.errors.LPathError`) map to 400,
a closed/draining service to 503, so clients always see a clean one-line
error instead of a traceback.

Failures are further classified **transient vs. permanent** (the
``transient`` flag on every :class:`ServeError`, surfaced to clients so
their retry policies never hammer a permanent 400):

* a store whose reads fail (``OSError``/``ValueError`` out of the mmap
  path — a dying disk, a truncated file, the ``mmap_read_error`` fault
  point) answers **503** and is **quarantined** after
  ``quarantine_after`` consecutive failures, or immediately when its
  on-disk bytes no longer match the fingerprint taken at open; a
  quarantined store keeps answering 503 (with a ``Retry-After`` hint)
  while every other store serves normally, and recovers through
  re-verification — lazily after its cooldown, or actively via
  :meth:`QueryService.readiness` (the ``/readyz`` probe);
* a sliding-window **circuit breaker** watches executed-query outcomes
  and, past a failure-rate threshold, sheds load with **429** for a
  cooldown instead of queueing doomed work; half-open trials re-close
  it as soon as executions succeed again.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..columnar.kernels import kernel_info
from ..lpath.errors import LPathError
from ..plan.ir import AGGREGATE_OPS
from .cache import ResultCache

DIALECTS = ("lpath", "xpath")

#: Rows per page when the request does not say (and the ceiling any
#: request can ask for in one page; deeper pagination streams the rest).
DEFAULT_PAGE_ROWS = 1_000
MAX_PAGE_ROWS = 50_000

#: Queries one /batch request may carry.
MAX_BATCH_QUERIES = 256

#: Recent samples kept per endpoint for the latency percentiles.
LATENCY_WINDOW = 2_048


class ServeError(LPathError):
    """A request-level failure with an HTTP status code.

    ``transient`` tells clients whether the same request is worth
    retrying (defaults from the status: overload and unavailability
    pass, bad requests don't); ``retry_after`` is an optional hint in
    seconds the transport surfaces as a ``Retry-After`` header."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        transient: Optional[bool] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        if transient is None:
            transient = status in (429, 503)
        self.transient = transient


class QueryCancelled(Exception):
    """Raised inside a worker when its request gave up waiting."""


class CircuitBreaker:
    """A sliding-window circuit breaker over executed-query outcomes.

    Closed: outcomes feed a window of the last ``window`` executions;
    once at least ``min_samples`` are in and the failure rate exceeds
    ``threshold``, the breaker opens.  Open: callers are shed (the
    service answers 429 with a ``Retry-After``) for ``cooldown``
    seconds.  Half-open: after the cooldown, one trial request per
    cooldown period is let through — a success closes the breaker and
    clears the window, a failure re-opens it.  Only *executed* queries
    are recorded: admission-control rejections and client errors (4xx)
    say nothing about backend health and never move the breaker.
    """

    def __init__(
        self,
        window: int = 64,
        threshold: float = 0.5,
        min_samples: int = 20,
        cooldown: float = 2.0,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise LPathError(
                f"breaker threshold must be in (0, 1], got {threshold!r}"
            )
        if min_samples < 1 or window < min_samples:
            raise LPathError(
                "breaker needs window >= min_samples >= 1, got "
                f"window={window!r} min_samples={min_samples!r}"
            )
        self.window = window
        self.threshold = threshold
        self.min_samples = min_samples
        self.cooldown = cooldown
        self._samples: deque = deque(maxlen=window)
        self._state = "closed"
        self._since = time.monotonic()
        self.opens = 0
        self.shed = 0
        self._lock = threading.Lock()

    def allow(self) -> Optional[float]:
        """``None`` to proceed, or the seconds to wait before retrying
        when this request is being shed."""
        with self._lock:
            if self._state == "closed":
                return None
            now = time.monotonic()
            elapsed = now - self._since
            if elapsed >= self.cooldown:
                # This request is the (next) half-open trial; resetting
                # the clock spaces trials one cooldown apart, so a trial
                # that never reports back cannot wedge the breaker.
                self._state = "half_open"
                self._since = now
                return None
            self.shed += 1
            return max(self.cooldown - elapsed, 0.05)

    def record(self, ok: bool) -> None:
        with self._lock:
            if self._state == "half_open":
                if ok:
                    self._state = "closed"
                    self._samples.clear()
                else:
                    self._state = "open"
                    self.opens += 1
                self._since = time.monotonic()
                return
            self._samples.append(ok)
            if self._state != "closed":
                return
            if len(self._samples) < self.min_samples:
                return
            failures = sum(1 for sample in self._samples if not sample)
            if failures / len(self._samples) > self.threshold:
                self._state = "open"
                self._since = time.monotonic()
                self.opens += 1
                self._samples.clear()

    def stats(self) -> dict:
        with self._lock:
            failures = sum(1 for sample in self._samples if not sample)
            return {
                "state": self._state,
                "window": self.window,
                "samples": len(self._samples),
                "failures": failures,
                "threshold": self.threshold,
                "min_samples": self.min_samples,
                "cooldown_seconds": self.cooldown,
                "opens": self.opens,
                "shed": self.shed,
            }


@dataclass(frozen=True)
class StoreSpec:
    """One store to serve: a compiled corpus path plus the dialect its
    labels were written for (an LPDB file records lpath- *or*
    xpath-scheme rows; the operator declares which)."""

    path: str
    dialect: str = "lpath"


class StoreHandle:
    """A served store: the shared engine, its cached identity, and its
    health state (mutated only under the owning service's lock)."""

    def __init__(
        self, spec: StoreSpec, engine, fingerprint: str, live=None
    ) -> None:
        self.spec = spec
        self.engine = engine
        self.fingerprint = fingerprint
        #: The :class:`repro.live.LiveEngineManager` when this store is a
        #: writable LPDB0005 directory; ``None`` for immutable files.
        self.live = live
        #: Read failures since the last success; ``quarantine_after`` of
        #: them in a row quarantines the store.
        self.consecutive_failures = 0
        #: Monotonic instant the quarantine cooldown ends (None = healthy).
        self.quarantined_until: Optional[float] = None
        self.quarantine_reason: Optional[str] = None
        #: Times this store has entered quarantine over its lifetime.
        self.quarantines = 0

    def verify(self) -> tuple[bool, Optional[str]]:
        """Re-fingerprint the on-disk file against the identity taken at
        open — the integrity probe behind quarantine and recovery.  Runs
        outside any lock (it reads the disk).

        Live stores delegate to their manager: the daemon holds the
        exclusive writer lock, so *it* is the source of truth — a
        divergence between disk and the manager's view is real
        corruption, not a legitimate external write."""
        if self.live is not None:
            return self.live.verify()
        from .. import store as store_module

        try:
            current = store_module.store_fingerprint(self.spec.path)
        except (OSError, ValueError) as error:
            return False, f"store unreadable: {error}"
        if current != self.fingerprint:
            return False, (
                f"on-disk bytes changed under the server (fingerprint "
                f"{current} != served {self.fingerprint})"
            )
        return True, None

    def health(self) -> dict:
        return {
            "quarantined": self.quarantined_until is not None,
            "consecutive_failures": self.consecutive_failures,
            "quarantines": self.quarantines,
            "reason": self.quarantine_reason,
        }

    def describe(self) -> dict:
        engine = self.engine
        document = {
            "path": self.spec.path,
            "dialect": self.spec.dialect,
            "fingerprint": self.fingerprint,
            "segments": engine.segments,
            "workers": engine.workers,
            "mode": engine.mode,
            "executor": engine.executor,
            "plan_cache": engine.cache_stats(),
            "health": self.health(),
        }
        pool = getattr(engine, "_pool", None)
        if pool is not None:
            document["pool"] = pool.stats()
        if self.live is not None:
            document["live"] = self.live.status()
        return document


class QueryRequest:
    """A validated query request (transport-independent)."""

    __slots__ = (
        "query", "dialect", "pivot", "count", "limit", "offset", "store",
        "timeout", "top_k", "agg",
    )

    def __init__(self, params: dict) -> None:
        query = params.get("query") if "query" in params else params.get("q")
        if not isinstance(query, str) or not query.strip():
            raise ServeError(400, "missing query text (use 'query' or 'q')")
        self.query = query
        dialect = params.get("dialect", "lpath")
        if dialect not in DIALECTS:
            raise ServeError(
                400, f"unknown dialect {dialect!r}; choose from {DIALECTS}"
            )
        self.dialect = dialect
        self.pivot = _flag(params, "pivot")
        self.count = _flag(params, "count")
        self.limit = _bounded_int(
            params, "limit", DEFAULT_PAGE_ROWS, 1, MAX_PAGE_ROWS
        )
        self.offset = _bounded_int(params, "offset", 0, 0, None)
        self.store = params.get("store") or None
        # top_k compiles an early-terminating top-k plan (and caches only
        # the truncated rows); agg evaluates an aggregate instead of rows.
        top_k = params.get("top_k")
        self.top_k = None if top_k is None else _as_int("top_k", top_k)
        if self.top_k is not None and self.top_k < 0:
            raise ServeError(400, f"top_k must be >= 0 (got {self.top_k})")
        agg = params.get("agg") or None
        if agg is not None and agg not in AGGREGATE_OPS:
            raise ServeError(
                400,
                f"unknown agg {agg!r}; choose from {', '.join(AGGREGATE_OPS)}",
            )
        self.agg = agg
        if self.agg is not None and self.top_k is not None:
            raise ServeError(400, "top_k and agg cannot be combined")
        if self.agg is not None and self.count:
            raise ServeError(400, "count and agg cannot be combined")
        timeout = params.get("timeout_ms")
        if timeout is None:
            self.timeout = None
        else:
            millis = _as_int("timeout_ms", timeout)
            if millis <= 0:
                raise ServeError(400, "timeout_ms must be a positive integer")
            self.timeout = millis / 1000.0


def _flag(params: dict, name: str) -> bool:
    value = params.get(name, False)
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        if value.lower() in ("1", "true", "yes", "on"):
            return True
        if value.lower() in ("0", "false", "no", "off", ""):
            return False
    raise ServeError(400, f"{name} must be a boolean (got {value!r})")


def _as_int(name: str, value) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise ServeError(400, f"{name} must be an integer (got {value!r})")
    try:
        return int(value)
    except ValueError:
        raise ServeError(400, f"{name} must be an integer (got {value!r})")


def _bounded_int(
    params: dict, name: str, default: int, floor: int, ceiling: Optional[int]
) -> int:
    value = params.get(name)
    if value is None:
        return default
    number = _as_int(name, value)
    if number < floor:
        raise ServeError(400, f"{name} must be >= {floor} (got {number})")
    if ceiling is not None and number > ceiling:
        raise ServeError(400, f"{name} must be <= {ceiling} (got {number})")
    return number


class _Ticket:
    """One admitted query's deadline and cancellation flag."""

    __slots__ = ("deadline", "cancelled")

    def __init__(self, deadline: float) -> None:
        self.deadline = deadline
        self.cancelled = threading.Event()

    def remaining(self) -> float:
        return self.deadline - time.monotonic()

    def check(self) -> None:
        if self.cancelled.is_set():
            raise QueryCancelled()


class QueryService:
    """Shared engines + admission control + result cache; see module doc."""

    def __init__(
        self,
        stores: Union[str, StoreSpec, Sequence[Union[str, StoreSpec]]],
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        max_inflight: int = 8,
        max_queue: int = 16,
        timeout: float = 30.0,
        result_cache_size: int = 256,
        max_cached_rows: int = 100_000,
        quarantine_after: int = 3,
        store_retry_after: float = 1.0,
        breaker: Optional[CircuitBreaker] = None,
        compact_rows: int = 0,
    ) -> None:
        if max_inflight < 1:
            raise LPathError(
                f"max_inflight must be a positive int, got {max_inflight!r}"
            )
        if max_queue < 0:
            raise LPathError(f"max_queue must be >= 0, got {max_queue!r}")
        if timeout <= 0:
            raise LPathError(f"timeout must be positive, got {timeout!r}")
        if quarantine_after < 1:
            raise LPathError(
                f"quarantine_after must be >= 1, got {quarantine_after!r}"
            )
        if store_retry_after <= 0:
            raise LPathError(
                f"store_retry_after must be positive, got {store_retry_after!r}"
            )
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.timeout = float(timeout)
        if compact_rows < 0:
            raise LPathError(
                f"compact_rows must be >= 0, got {compact_rows!r}"
            )
        self.quarantine_after = quarantine_after
        self.store_retry_after = float(store_retry_after)
        self.compact_rows = int(compact_rows)
        self.appends = 0
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.results = ResultCache(result_cache_size, max_cached_rows)
        self._stores: dict[str, StoreHandle] = {}
        self._default: Optional[str] = None
        self._lock = threading.Lock()
        self._turnstile = threading.Condition(self._lock)
        self._inflight = 0
        self._waiting = 0
        self._draining = False
        self._closed = False
        self._started = time.monotonic()
        self.served = 0
        self.rejected = 0
        self.timeouts = 0
        self.errors = 0
        self.shed = 0
        self.store_failures = 0
        self.quarantines = 0
        # route -> [count, deque of recent seconds] for /stats percentiles.
        self._latency: dict[str, list] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve"
        )
        if isinstance(stores, (str, StoreSpec)):
            stores = [stores]
        if not stores:
            raise LPathError("QueryService needs at least one store to serve")
        try:
            for item in stores:
                spec = item if isinstance(item, StoreSpec) else StoreSpec(item)
                self._add_store(spec, workers=workers, mode=mode)
        except BaseException:
            self.close(drain_timeout=0.0)
            raise

    # -- engine registry ----------------------------------------------------

    def _add_store(
        self, spec: StoreSpec, workers: Optional[int], mode: Optional[str]
    ) -> None:
        from .. import store as store_module

        if spec.dialect not in DIALECTS:
            raise LPathError(
                f"unknown dialect {spec.dialect!r}; choose from {DIALECTS}"
            )
        if spec.path in self._stores:
            raise LPathError(f"store {spec.path!r} is already being served")
        if os.path.isdir(spec.path):
            # A live LPDB0005 directory: the daemon takes the exclusive
            # writer lock and serves through a manager that follows the
            # log (appends and compactions swap the engine in place).
            if spec.dialect != "lpath":
                raise LPathError(
                    "live (LPDB0005) corpora serve the lpath dialect only; "
                    "compact and re-label for xpath serving"
                )
            if mode == "process":
                raise LPathError(
                    "live corpora fan out on threads (the in-memory delta "
                    "segment cannot be re-opened by path in a worker "
                    "process); drop --mode process or compact first"
                )
            from ..live import LiveEngineManager

            try:
                manager = LiveEngineManager(
                    spec.path, writable=True, workers=workers,
                    compact_rows=self.compact_rows,
                )
            except ValueError as error:  # StoreError: lock held, corrupt…
                raise LPathError(str(error)) from error
            self._warm(manager.engine)
            self._stores[spec.path] = StoreHandle(
                spec, manager.engine, manager.fingerprint(), live=manager
            )
            if self._default is None:
                self._default = spec.path
            return
        fingerprint = store_module.store_fingerprint(spec.path)
        engine = self._open_engine(spec, workers, mode)
        self._warm(engine)
        self._stores[spec.path] = StoreHandle(spec, engine, fingerprint)
        if self._default is None:
            self._default = spec.path

    @staticmethod
    def _open_engine(spec: StoreSpec, workers: Optional[int], mode):
        from ..lpath import LPathEngine
        from ..xpath import XPathEngine

        if spec.dialect == "lpath":
            return LPathEngine.open(spec.path, workers=workers, mode=mode)
        from .. import store as store_module

        if store_module.corpus_format(spec.path) != "LPDB0004":
            raise LPathError(
                "serving the xpath dialect needs an LPDB0004 store of "
                "start/end-labeled rows (save one with "
                "repro.labeling.xpath_scheme labels and format='lpdb0004')"
            )
        return XPathEngine.from_store_mmap(
            spec.path, workers=workers, mode=mode
        )

    @staticmethod
    def _warm(engine) -> None:
        """Materialize the lazily built columnar runtimes while still
        single-threaded, so the first burst of concurrent requests finds
        every per-segment physical context already in place."""
        compilers = getattr(engine, "_compiler", None)
        segments = getattr(compilers, "segments", None)
        for compiler in (
            [segment.compiler for segment in segments]
            if segments is not None else [compilers]
        ):
            if compiler is not None and compiler.column_store is not None:
                compiler.columnar_runtime

    def _resolve(self, path: Optional[str]) -> StoreHandle:
        if path is None:
            handle = self._stores[self._default]
        else:
            handle = self._stores.get(path)
            if handle is None:
                raise ServeError(
                    404,
                    f"store {path!r} is not served here "
                    f"(serving: {sorted(self._stores)})",
                )
        if handle.live is not None:
            # Follow the log: a background compaction (or an append on
            # another connection) may have swapped the engine since this
            # handle was last touched.  The fingerprint moves with it,
            # which is what gives the result cache read-your-writes.
            with self._lock:
                handle.engine = handle.live.engine
                handle.fingerprint = handle.live.fingerprint()
        return handle

    # -- the request path ---------------------------------------------------

    def execute(self, params: dict) -> dict:
        """Run one validated request to a JSON-shaped response dict.

        Raises :class:`ServeError` for every failure mode (bad request,
        overload, timeout, draining); any other exception is a server
        bug the transport maps to 500."""
        request = QueryRequest(params)
        handle = self._resolve(request.store)
        self._check_store(handle)
        key = self._result_key(handle, request)
        started = time.perf_counter()
        rows = self.results.get_rows(key)
        cached = rows is not None
        if not cached:
            self._check_breaker()
            rows = self._execute_uncached(handle, request, key)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        return self._page(rows, request, cached, elapsed_ms)

    def execute_append(self, params: dict) -> dict:
        """Durably append bracketed trees to a served live store and
        swap the rebuilt engine in before answering, so the next query —
        on any connection — sees the new rows (read-your-writes).

        400 for a non-live store, empty input or a parse error; 503
        (transient) when the WAL write itself fails — the rows were NOT
        acknowledged and the client may retry."""
        trees = params.get("trees")
        if not isinstance(trees, str) or not trees.strip():
            raise ServeError(
                400, "append needs non-empty bracketed 'trees' text"
            )
        store = params.get("store")
        if store is not None and not isinstance(store, str):
            raise ServeError(400, f"store must be a string, got {store!r}")
        handle = self._resolve(store)
        if handle.live is None:
            raise ServeError(
                400,
                f"store {handle.spec.path!r} is an immutable "
                "compiled file; only live (LPDB0005) corpora accept "
                "appends",
            )
        self._check_store(handle)
        ticket = _Ticket(time.monotonic() + self.timeout)
        self._admit(ticket)
        try:
            try:
                result = handle.live.append_trees(trees)
            except ValueError as error:
                # StoreError subclasses ValueError: a failed durability
                # barrier (fsync_fail / disk_full / torn_write) means
                # nothing was acknowledged — transient, retryable.
                # Anything else from the parser is a bad request.
                from ..store import StoreError

                if isinstance(error, StoreError):
                    with self._lock:
                        self.errors += 1
                    message = self._store_failure(handle, error)
                    raise ServeError(
                        503, message, retry_after=self.store_retry_after
                    ) from error
                raise ServeError(400, str(error)) from error
        finally:
            self._release()
        with self._lock:
            self.appends += 1
            handle.engine = handle.live.engine
            handle.fingerprint = result["fingerprint"]
            handle.consecutive_failures = 0
        return result

    def _check_breaker(self) -> None:
        """Shed this request with 429 while the circuit breaker is open
        (cache hits never get here — a sick backend can still serve its
        hot set)."""
        retry_after = self.breaker.allow()
        if retry_after is None:
            return
        with self._lock:
            self.rejected += 1
            self.shed += 1
        raise ServeError(
            429,
            "circuit breaker is open (recent executions kept failing); "
            "retry after the cooldown",
            retry_after=retry_after,
        )

    def _check_store(self, handle: StoreHandle) -> None:
        """Answer 503 for a quarantined store; once its cooldown has
        passed, probe the on-disk bytes and lift the quarantine if the
        store verifies again."""
        with self._lock:
            until = handle.quarantined_until
            if until is None:
                return
            now = time.monotonic()
            if now < until:
                reason = handle.quarantine_reason or "recent read failures"
                raise ServeError(
                    503,
                    f"store {handle.spec.path!r} is quarantined: {reason}",
                    retry_after=until - now,
                )
        ok, reason = handle.verify()  # cooldown over: probe off-lock
        with self._lock:
            if ok:
                if handle.quarantined_until is not None:
                    handle.quarantined_until = None
                    handle.consecutive_failures = 0
                    handle.quarantine_reason = None
                return
            handle.quarantined_until = (
                time.monotonic() + self.store_retry_after
            )
            handle.quarantine_reason = reason
            raise ServeError(
                503,
                f"store {handle.spec.path!r} is quarantined: {reason}",
                retry_after=self.store_retry_after,
            )

    def _store_failure(self, handle: StoreHandle, error: Exception) -> str:
        """Record one read failure against ``handle``; quarantine it
        immediately when its on-disk bytes no longer verify, or after
        ``quarantine_after`` consecutive failures.  Returns the message
        to surface."""
        message = f"store read failed: {error}"
        with self._lock:
            self.store_failures += 1
            handle.consecutive_failures += 1
            quarantine = handle.consecutive_failures >= self.quarantine_after
        if not quarantine:
            ok, reason = handle.verify()
            if not ok:
                quarantine = True
                message = f"store read failed: {reason}"
        if quarantine:
            with self._lock:
                if handle.quarantined_until is None:
                    self.quarantines += 1
                    handle.quarantines += 1
                handle.quarantined_until = (
                    time.monotonic() + self.store_retry_after
                )
                handle.quarantine_reason = message
        return message

    def _result_key(self, handle: StoreHandle, request: QueryRequest) -> tuple:
        try:
            key = self.results.key(
                handle.fingerprint, request.dialect, request.query,
                request.pivot, limit=request.top_k, agg=request.agg,
            )
        except ServeError:
            raise
        except LPathError as error:
            # e.g. an invalid REPRO_KERNELS value in the daemon's
            # environment — a configuration error, reported cleanly.
            raise ServeError(400, str(error))
        if request.dialect != handle.spec.dialect:
            raise ServeError(
                400,
                f"store {handle.spec.path!r} serves dialect "
                f"{handle.spec.dialect!r}, not {request.dialect!r}",
            )
        return key

    def execute_batch(self, params: dict):
        """Admit a whole batch of queries as one unit and return a
        generator streaming one response document per query, in order,
        as each completes (plus a final summary document).

        The batch shares one admission ticket and one deadline; uncached
        members execute through one shared-scan cache
        (:mod:`repro.plan.batch`), so identical scans and common step
        prefixes across the batch run once.  Result-cache integration is
        per-query: members hit and populate the cache individually under
        their own keys.  Validation errors raise :class:`ServeError`
        before anything streams; per-member failures become
        ``{"index": i, "error": ...}`` documents."""
        raw = params.get("queries")
        if not isinstance(raw, list) or not raw:
            raise ServeError(400, "batch body needs a non-empty 'queries' list")
        if len(raw) > MAX_BATCH_QUERIES:
            raise ServeError(
                400,
                f"batch of {len(raw)} queries exceeds the "
                f"{MAX_BATCH_QUERIES}-query ceiling",
            )
        defaults = {
            name: params[name]
            for name in ("dialect", "store", "pivot", "timeout_ms")
            if name in params
        }
        members = []
        for entry in raw:
            if isinstance(entry, str):
                entry = {"query": entry}
            elif not isinstance(entry, dict):
                raise ServeError(
                    400, "each batch entry must be a query string or an object"
                )
            members.append(QueryRequest({**defaults, **entry}))
        handle = self._resolve(members[0].store)
        self._check_store(handle)
        keys = [self._result_key(handle, member) for member in members]
        if any(member.store != members[0].store for member in members):
            raise ServeError(
                400, "all queries in one batch must target the same store"
            )
        self._check_breaker()
        budget = self.timeout
        timeouts = [m.timeout for m in members if m.timeout is not None]
        if timeouts:
            budget = min(budget, *timeouts)
        ticket = _Ticket(time.monotonic() + budget)
        self._admit(ticket)
        return self._stream_batch(handle, members, keys, ticket)

    def _stream_batch(self, handle, members, keys, ticket):
        from ..plan.batch import BatchState

        batch_started = time.perf_counter()
        completed = 0
        try:
            # Compile every uncached member up front (through the plan
            # cache) so the shared-prefix refcounts see the whole batch;
            # a member that fails to compile streams an error document.
            compiled: dict[int, object] = {}
            failures: dict[int, str] = {}
            for index, member in enumerate(members):
                if keys[index] in self.results:  # hit counted on its turn
                    continue
                try:
                    compiled[index] = handle.engine.compile(
                        member.query, pivot=member.pivot,
                        limit=member.top_k, agg=member.agg,
                    )
                except LPathError as error:
                    failures[index] = str(error)
            state = BatchState(list(compiled.values()))
            for index, member in enumerate(members):
                started = time.perf_counter()
                if failures.get(index) is not None:
                    with self._lock:
                        self.errors += 1
                    yield {"index": index, "error": failures[index]}
                    continue
                if ticket.remaining() <= 0:
                    with self._lock:
                        self.timeouts += 1
                    yield {
                        "index": index,
                        "error": "batch exceeded its deadline",
                    }
                    break
                rows = self.results.get_rows(keys[index])
                cached = rows is not None
                try:
                    if not cached:
                        plan = compiled.get(index)
                        if plan is None:
                            # A racing request cached this result after
                            # the upfront pass; recompile is a plan-cache
                            # hit.
                            plan = handle.engine.compile(
                                member.query, pivot=member.pivot,
                                limit=member.top_k, agg=member.agg,
                            )
                            rows = self._shape(state.execute_one(plan))
                        else:
                            rows = self._shape(state.execute_one(plan))
                        self.results.put_rows(keys[index], rows)
                        with self._lock:
                            self.served += 1
                            handle.consecutive_failures = 0
                except LPathError as error:
                    with self._lock:
                        self.errors += 1
                    yield {"index": index, "error": str(error)}
                    continue
                except (OSError, ValueError) as error:
                    # Same classification as the single-query path: a
                    # store-read failure is counted (and may quarantine
                    # the store), the member streams a clean error, and
                    # the rest of the batch keeps going.
                    with self._lock:
                        self.errors += 1
                    message = self._store_failure(handle, error)
                    yield {
                        "index": index, "error": message, "transient": True,
                    }
                    continue
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                document = self._page(rows, member, cached, elapsed_ms)
                document["index"] = index
                completed += 1
                yield document
            yield {
                "done": completed == len(members),
                "queries": len(members),
                "completed": completed,
                "elapsed_ms": round(
                    (time.perf_counter() - batch_started) * 1000.0, 3
                ),
            }
        finally:
            self._release()

    @staticmethod
    def _shape(result) -> tuple:
        """Normalize a batch member's result to the cacheable tuple shape
        (:meth:`_evaluate`'s contract)."""
        if isinstance(result, dict):
            return tuple(sorted(result.items()))
        return tuple(result)

    def record_latency(self, route: str, seconds: float) -> None:
        """Feed one request's wall time into the per-endpoint window
        (the transport calls this once per handled request)."""
        with self._lock:
            bucket = self._latency.get(route)
            if bucket is None:
                bucket = self._latency[route] = [
                    0, deque(maxlen=LATENCY_WINDOW)
                ]
            bucket[0] += 1
            bucket[1].append(seconds)

    def _endpoint_stats(self) -> dict:
        """Per-endpoint counts and latency percentiles over the recent
        window (caller holds the lock)."""
        endpoints = {}
        for route, (count, samples) in sorted(self._latency.items()):
            ordered = sorted(samples)
            last = len(ordered) - 1
            endpoints[route] = {
                "count": count,
                "p50_ms": round(ordered[int(last * 0.50)] * 1000.0, 3),
                "p99_ms": round(ordered[int(last * 0.99)] * 1000.0, 3),
            }
        return endpoints

    def _execute_uncached(
        self, handle: StoreHandle, request: QueryRequest, key: tuple
    ) -> tuple:
        budget = self.timeout
        if request.timeout is not None:
            budget = min(budget, request.timeout)
        ticket = _Ticket(time.monotonic() + budget)
        self._admit(ticket)
        try:
            future = self._pool.submit(self._run, handle, request, ticket)
            try:
                rows = future.result(timeout=max(ticket.remaining(), 0.0))
            except FutureTimeout:
                ticket.cancelled.set()
                with self._lock:
                    self.timeouts += 1
                self.breaker.record(False)
                raise ServeError(
                    504,
                    f"query exceeded its {budget:g}s deadline "
                    "(still cancelling cooperatively)",
                )
            except QueryCancelled:
                self.breaker.record(False)
                raise ServeError(504, "query was cancelled")
            except ServeError:
                raise
            except LPathError as error:
                with self._lock:
                    self.errors += 1
                if error.transient or "closed" in str(error):
                    self.breaker.record(False)
                    raise ServeError(503, str(error))
                # A permanent query error: the backend executed fine, so
                # the breaker records a healthy sample.
                self.breaker.record(True)
                raise ServeError(400, str(error))
            except (OSError, ValueError) as error:
                # The mmap read path failed underneath a healthy-looking
                # engine — a dying disk, a truncated or corrupted file,
                # or the mmap_read_error fault point.  Classify, count
                # against the store, maybe quarantine; never a 500.
                with self._lock:
                    self.errors += 1
                self.breaker.record(False)
                message = self._store_failure(handle, error)
                raise ServeError(
                    503, message, retry_after=self.store_retry_after
                )
            self.results.put_rows(key, rows)
            with self._lock:
                self.served += 1
                handle.consecutive_failures = 0
            self.breaker.record(True)
            return rows
        finally:
            self._release()

    def _run(self, handle: StoreHandle, request: QueryRequest, ticket):
        """The worker side: cooperative-cancellation checkpoints wrap
        the engine call (which itself is not interruptible)."""
        ticket.check()  # expired or abandoned while queued in the pool
        rows = self._evaluate(handle, request)
        ticket.check()  # abandoned mid-flight: never cache, never return
        return rows

    @staticmethod
    def _evaluate(handle: StoreHandle, request: QueryRequest) -> tuple:
        """One engine call to the cacheable result shape: ``(tid, id)``
        rows (already top-k-truncated under ``top_k``), or sorted
        ``(group, count)`` pairs for an aggregate — the key's ``agg``
        dimension disambiguates the two shapes on the way back out."""
        if request.agg is not None:
            result = handle.engine.aggregate(
                request.query, agg=request.agg, pivot=request.pivot
            )
            return tuple(sorted(result.items()))
        return tuple(
            handle.engine.query(
                request.query, pivot=request.pivot, limit=request.top_k
            )
        )

    def _admit(self, ticket: _Ticket) -> None:
        with self._turnstile:
            if self._draining:
                raise ServeError(503, "server is draining")
            if self._inflight < self.max_inflight:
                self._inflight += 1
                return
            if self._waiting >= self.max_queue:
                self.rejected += 1
                raise ServeError(
                    429,
                    f"server is at capacity ({self.max_inflight} in flight, "
                    f"{self._waiting} queued); retry later",
                )
            self._waiting += 1
            try:
                while self._inflight >= self.max_inflight:
                    remaining = ticket.remaining()
                    if remaining <= 0 or self._draining:
                        status, message = (
                            (503, "server is draining")
                            if self._draining
                            else (504, "query expired while queued")
                        )
                        if status == 504:
                            self.timeouts += 1
                        raise ServeError(status, message)
                    self._turnstile.wait(timeout=remaining)
                self._inflight += 1
            finally:
                self._waiting -= 1

    def _release(self) -> None:
        with self._turnstile:
            self._inflight -= 1
            self._turnstile.notify_all()

    @staticmethod
    def _page(
        rows: tuple, request: QueryRequest, cached: bool, elapsed_ms: float
    ) -> dict:
        if request.agg is not None:
            return {
                "agg": request.agg,
                "aggregate": [[group, count] for group, count in rows],
                "cached": cached,
                "elapsed_ms": round(elapsed_ms, 3),
            }
        total = len(rows)
        if request.count:
            return {
                "total": total,
                "count": total,
                "cached": cached,
                "elapsed_ms": round(elapsed_ms, 3),
            }
        window = rows[request.offset:request.offset + request.limit]
        next_offset = request.offset + len(window)
        return {
            "total": total,
            "offset": request.offset,
            "limit": request.limit,
            "matches": [list(pair) for pair in window],
            "next_offset": next_offset if next_offset < total else None,
            "cached": cached,
            "elapsed_ms": round(elapsed_ms, 3),
        }

    # -- observability ------------------------------------------------------

    def stats(self) -> dict:
        """One self-describing snapshot for the ``/stats`` endpoint."""
        with self._lock:
            server = {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "timeout_seconds": self.timeout,
                "inflight": self._inflight,
                "waiting": self._waiting,
                "draining": self._draining,
                "served": self.served,
                "appends": self.appends,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "errors": self.errors,
                "shed": self.shed,
                "store_failures": self.store_failures,
                "quarantines": self.quarantines,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
            }
            endpoints = self._endpoint_stats()
        return {
            "server": server,
            "endpoints": endpoints,
            "result_cache": self.results.stats,
            "breaker": self.breaker.stats(),
            "kernels": kernel_info(),
            "stores": [
                handle.describe() for handle in self._stores.values()
            ],
        }

    def health(self) -> dict:
        """Liveness: answers as long as the process can run Python —
        never touches the disk, so a sick store can't fail it."""
        with self._lock:
            status = "draining" if self._draining else "ok"
        return {"status": status}

    def readiness(self) -> tuple[bool, dict]:
        """Readiness: actively verify every store's on-disk bytes
        against the fingerprint taken at open.  A store that fails the
        probe is quarantined on the spot; a quarantined store that
        verifies again is restored.  Ready means not draining and at
        least one store healthy — a daemon behind a load balancer keeps
        taking traffic for its healthy stores while a corrupted one
        sits out."""
        with self._lock:
            draining = self._draining or self._closed
        stores = {}
        healthy = 0
        for handle in self._stores.values():
            ok, reason = handle.verify()
            with self._lock:
                if ok:
                    if handle.quarantined_until is not None:
                        handle.quarantined_until = None
                        handle.consecutive_failures = 0
                        handle.quarantine_reason = None
                    healthy += 1
                else:
                    if handle.quarantined_until is None:
                        self.quarantines += 1
                        handle.quarantines += 1
                    handle.quarantined_until = (
                        time.monotonic() + self.store_retry_after
                    )
                    handle.quarantine_reason = reason
                health = handle.health()
                if handle.live is not None:
                    live_status = handle.live.status()
                    health["live"] = {
                        "generation": live_status["generation"],
                        "delta_rows": live_status["delta_rows"],
                        "compacting": live_status["compacting"],
                        "compactions": live_status["compactions"],
                    }
                stores[handle.spec.path] = health
        ready = healthy > 0 and not draining
        status = "draining" if draining else ("ok" if ready else "degraded")
        if ready and healthy < len(stores):
            status = "degraded"
        return ready, {
            "status": status,
            "ready": ready,
            "healthy_stores": healthy,
            "stores": stores,
        }

    # -- lifecycle ----------------------------------------------------------

    def close(self, drain_timeout: float = 10.0) -> None:
        """Stop admitting, drain in-flight queries (bounded by
        ``drain_timeout``), then release the pool and every engine.
        Idempotent — and engine ``close()`` is idempotent below it."""
        with self._turnstile:
            self._draining = True
            self._turnstile.notify_all()
            deadline = time.monotonic() + max(drain_timeout, 0.0)
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._turnstile.wait(timeout=remaining)
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=False)
        for handle in self._stores.values():
            if handle.live is not None:
                handle.live.close()  # compactor, engines, maps, lock
            else:
                handle.engine.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
