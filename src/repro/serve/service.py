"""The transport-agnostic query service behind the daemon.

One :class:`QueryService` owns:

* a registry of **shared engines**, one per served store path, opened
  once (mmap-backed for ``LPDB0004`` files) and queried concurrently by
  every request thread — the plan cache is lock-protected and compiled
  plans are stateless, so one engine serves any number of threads;
* **admission control** — at most ``max_inflight`` queries execute at
  once; up to ``max_queue`` more wait (their queue time counts against
  their deadline); anything beyond that is rejected immediately with
  HTTP 429 semantics, so overload degrades to fast rejections instead of
  unbounded latency;
* a **per-query deadline** with cooperative cancellation — the request
  thread waits on the executing future for the deadline's remainder and
  answers 504 on expiry; the worker observes the cancellation at its
  checkpoints (on dequeue, after execution) so an abandoned query never
  populates the result cache and a queued-but-expired query never
  executes at all;
* the **result cache** (:mod:`repro.serve.cache`) keyed on
  ``(store fingerprint, dialect, query, pivot, kernels, force-join)`` —
  hits bypass admission control entirely, which is what makes hot
  repeated queries cheap enough for the serving benchmark's QPS floor.

Errors are typed by :class:`ServeError` carrying an HTTP status; engine
and parse errors (:class:`~repro.lpath.errors.LPathError`) map to 400,
a closed/draining service to 503, so clients always see a clean one-line
error instead of a traceback.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..columnar.kernels import kernel_info
from ..lpath.errors import LPathError
from .cache import ResultCache

DIALECTS = ("lpath", "xpath")

#: Rows per page when the request does not say (and the ceiling any
#: request can ask for in one page; deeper pagination streams the rest).
DEFAULT_PAGE_ROWS = 1_000
MAX_PAGE_ROWS = 50_000


class ServeError(LPathError):
    """A request-level failure with an HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class QueryCancelled(Exception):
    """Raised inside a worker when its request gave up waiting."""


@dataclass(frozen=True)
class StoreSpec:
    """One store to serve: a compiled corpus path plus the dialect its
    labels were written for (an LPDB file records lpath- *or*
    xpath-scheme rows; the operator declares which)."""

    path: str
    dialect: str = "lpath"


class StoreHandle:
    """A served store: the shared engine plus its cached identity."""

    def __init__(self, spec: StoreSpec, engine, fingerprint: str) -> None:
        self.spec = spec
        self.engine = engine
        self.fingerprint = fingerprint

    def describe(self) -> dict:
        engine = self.engine
        return {
            "path": self.spec.path,
            "dialect": self.spec.dialect,
            "fingerprint": self.fingerprint,
            "segments": engine.segments,
            "workers": engine.workers,
            "mode": engine.mode,
            "executor": engine.executor,
            "plan_cache": engine.cache_stats(),
        }


class QueryRequest:
    """A validated query request (transport-independent)."""

    __slots__ = (
        "query", "dialect", "pivot", "count", "limit", "offset", "store",
        "timeout",
    )

    def __init__(self, params: dict) -> None:
        query = params.get("query") if "query" in params else params.get("q")
        if not isinstance(query, str) or not query.strip():
            raise ServeError(400, "missing query text (use 'query' or 'q')")
        self.query = query
        dialect = params.get("dialect", "lpath")
        if dialect not in DIALECTS:
            raise ServeError(
                400, f"unknown dialect {dialect!r}; choose from {DIALECTS}"
            )
        self.dialect = dialect
        self.pivot = _flag(params, "pivot")
        self.count = _flag(params, "count")
        self.limit = _bounded_int(
            params, "limit", DEFAULT_PAGE_ROWS, 1, MAX_PAGE_ROWS
        )
        self.offset = _bounded_int(params, "offset", 0, 0, None)
        self.store = params.get("store") or None
        timeout = params.get("timeout_ms")
        if timeout is None:
            self.timeout = None
        else:
            millis = _as_int("timeout_ms", timeout)
            if millis <= 0:
                raise ServeError(400, "timeout_ms must be a positive integer")
            self.timeout = millis / 1000.0


def _flag(params: dict, name: str) -> bool:
    value = params.get(name, False)
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        if value.lower() in ("1", "true", "yes", "on"):
            return True
        if value.lower() in ("0", "false", "no", "off", ""):
            return False
    raise ServeError(400, f"{name} must be a boolean (got {value!r})")


def _as_int(name: str, value) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise ServeError(400, f"{name} must be an integer (got {value!r})")
    try:
        return int(value)
    except ValueError:
        raise ServeError(400, f"{name} must be an integer (got {value!r})")


def _bounded_int(
    params: dict, name: str, default: int, floor: int, ceiling: Optional[int]
) -> int:
    value = params.get(name)
    if value is None:
        return default
    number = _as_int(name, value)
    if number < floor:
        raise ServeError(400, f"{name} must be >= {floor} (got {number})")
    if ceiling is not None and number > ceiling:
        raise ServeError(400, f"{name} must be <= {ceiling} (got {number})")
    return number


class _Ticket:
    """One admitted query's deadline and cancellation flag."""

    __slots__ = ("deadline", "cancelled")

    def __init__(self, deadline: float) -> None:
        self.deadline = deadline
        self.cancelled = threading.Event()

    def remaining(self) -> float:
        return self.deadline - time.monotonic()

    def check(self) -> None:
        if self.cancelled.is_set():
            raise QueryCancelled()


class QueryService:
    """Shared engines + admission control + result cache; see module doc."""

    def __init__(
        self,
        stores: Union[str, StoreSpec, Sequence[Union[str, StoreSpec]]],
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        max_inflight: int = 8,
        max_queue: int = 16,
        timeout: float = 30.0,
        result_cache_size: int = 256,
        max_cached_rows: int = 100_000,
    ) -> None:
        if max_inflight < 1:
            raise LPathError(
                f"max_inflight must be a positive int, got {max_inflight!r}"
            )
        if max_queue < 0:
            raise LPathError(f"max_queue must be >= 0, got {max_queue!r}")
        if timeout <= 0:
            raise LPathError(f"timeout must be positive, got {timeout!r}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.timeout = float(timeout)
        self.results = ResultCache(result_cache_size, max_cached_rows)
        self._stores: dict[str, StoreHandle] = {}
        self._default: Optional[str] = None
        self._lock = threading.Lock()
        self._turnstile = threading.Condition(self._lock)
        self._inflight = 0
        self._waiting = 0
        self._draining = False
        self._closed = False
        self._started = time.monotonic()
        self.served = 0
        self.rejected = 0
        self.timeouts = 0
        self.errors = 0
        self._pool = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve"
        )
        if isinstance(stores, (str, StoreSpec)):
            stores = [stores]
        if not stores:
            raise LPathError("QueryService needs at least one store to serve")
        try:
            for item in stores:
                spec = item if isinstance(item, StoreSpec) else StoreSpec(item)
                self._add_store(spec, workers=workers, mode=mode)
        except BaseException:
            self.close(drain_timeout=0.0)
            raise

    # -- engine registry ----------------------------------------------------

    def _add_store(
        self, spec: StoreSpec, workers: Optional[int], mode: Optional[str]
    ) -> None:
        from .. import store as store_module

        if spec.dialect not in DIALECTS:
            raise LPathError(
                f"unknown dialect {spec.dialect!r}; choose from {DIALECTS}"
            )
        if spec.path in self._stores:
            raise LPathError(f"store {spec.path!r} is already being served")
        fingerprint = store_module.store_fingerprint(spec.path)
        engine = self._open_engine(spec, workers, mode)
        self._warm(engine)
        self._stores[spec.path] = StoreHandle(spec, engine, fingerprint)
        if self._default is None:
            self._default = spec.path

    @staticmethod
    def _open_engine(spec: StoreSpec, workers: Optional[int], mode):
        from ..lpath import LPathEngine
        from ..xpath import XPathEngine

        if spec.dialect == "lpath":
            return LPathEngine.open(spec.path, workers=workers, mode=mode)
        from .. import store as store_module

        if store_module.corpus_format(spec.path) != "LPDB0004":
            raise LPathError(
                "serving the xpath dialect needs an LPDB0004 store of "
                "start/end-labeled rows (save one with "
                "repro.labeling.xpath_scheme labels and format='lpdb0004')"
            )
        return XPathEngine.from_store_mmap(
            spec.path, workers=workers, mode=mode
        )

    @staticmethod
    def _warm(engine) -> None:
        """Materialize the lazily built columnar runtimes while still
        single-threaded, so the first burst of concurrent requests finds
        every per-segment physical context already in place."""
        compilers = getattr(engine, "_compiler", None)
        segments = getattr(compilers, "segments", None)
        for compiler in (
            [segment.compiler for segment in segments]
            if segments is not None else [compilers]
        ):
            if compiler is not None and compiler.column_store is not None:
                compiler.columnar_runtime

    def _resolve(self, path: Optional[str]) -> StoreHandle:
        if path is None:
            return self._stores[self._default]
        handle = self._stores.get(path)
        if handle is None:
            raise ServeError(
                404,
                f"store {path!r} is not served here "
                f"(serving: {sorted(self._stores)})",
            )
        return handle

    # -- the request path ---------------------------------------------------

    def execute(self, params: dict) -> dict:
        """Run one validated request to a JSON-shaped response dict.

        Raises :class:`ServeError` for every failure mode (bad request,
        overload, timeout, draining); any other exception is a server
        bug the transport maps to 500."""
        request = QueryRequest(params)
        handle = self._resolve(request.store)
        try:
            key = self.results.key(
                handle.fingerprint, request.dialect, request.query,
                request.pivot,
            )
        except ServeError:
            raise
        except LPathError as error:
            # e.g. an invalid REPRO_KERNELS value in the daemon's
            # environment — a configuration error, reported cleanly.
            raise ServeError(400, str(error))
        if request.dialect != handle.spec.dialect:
            raise ServeError(
                400,
                f"store {handle.spec.path!r} serves dialect "
                f"{handle.spec.dialect!r}, not {request.dialect!r}",
            )
        started = time.perf_counter()
        rows = self.results.get(key)
        cached = rows is not None
        if not cached:
            rows = self._execute_uncached(handle, request, key)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        return self._page(rows, request, cached, elapsed_ms)

    def _execute_uncached(
        self, handle: StoreHandle, request: QueryRequest, key: tuple
    ) -> tuple:
        budget = self.timeout
        if request.timeout is not None:
            budget = min(budget, request.timeout)
        ticket = _Ticket(time.monotonic() + budget)
        self._admit(ticket)
        try:
            future = self._pool.submit(self._run, handle, request, ticket)
            try:
                rows = future.result(timeout=max(ticket.remaining(), 0.0))
            except FutureTimeout:
                ticket.cancelled.set()
                with self._lock:
                    self.timeouts += 1
                raise ServeError(
                    504,
                    f"query exceeded its {budget:g}s deadline "
                    "(still cancelling cooperatively)",
                )
            except QueryCancelled:
                raise ServeError(504, "query was cancelled")
            except ServeError:
                raise
            except LPathError as error:
                with self._lock:
                    self.errors += 1
                status = 503 if "closed" in str(error) else 400
                raise ServeError(status, str(error))
            self.results.put_rows(key, rows)
            with self._lock:
                self.served += 1
            return rows
        finally:
            self._release()

    def _run(self, handle: StoreHandle, request: QueryRequest, ticket):
        """The worker side: cooperative-cancellation checkpoints wrap
        the engine call (which itself is not interruptible)."""
        ticket.check()  # expired or abandoned while queued in the pool
        rows = tuple(
            handle.engine.query(request.query, pivot=request.pivot)
        )
        ticket.check()  # abandoned mid-flight: never cache, never return
        return rows

    def _admit(self, ticket: _Ticket) -> None:
        with self._turnstile:
            if self._draining:
                raise ServeError(503, "server is draining")
            if self._inflight < self.max_inflight:
                self._inflight += 1
                return
            if self._waiting >= self.max_queue:
                self.rejected += 1
                raise ServeError(
                    429,
                    f"server is at capacity ({self.max_inflight} in flight, "
                    f"{self._waiting} queued); retry later",
                )
            self._waiting += 1
            try:
                while self._inflight >= self.max_inflight:
                    remaining = ticket.remaining()
                    if remaining <= 0 or self._draining:
                        status, message = (
                            (503, "server is draining")
                            if self._draining
                            else (504, "query expired while queued")
                        )
                        if status == 504:
                            self.timeouts += 1
                        raise ServeError(status, message)
                    self._turnstile.wait(timeout=remaining)
                self._inflight += 1
            finally:
                self._waiting -= 1

    def _release(self) -> None:
        with self._turnstile:
            self._inflight -= 1
            self._turnstile.notify_all()

    @staticmethod
    def _page(
        rows: tuple, request: QueryRequest, cached: bool, elapsed_ms: float
    ) -> dict:
        total = len(rows)
        if request.count:
            return {
                "total": total,
                "count": total,
                "cached": cached,
                "elapsed_ms": round(elapsed_ms, 3),
            }
        window = rows[request.offset:request.offset + request.limit]
        next_offset = request.offset + len(window)
        return {
            "total": total,
            "offset": request.offset,
            "limit": request.limit,
            "matches": [list(pair) for pair in window],
            "next_offset": next_offset if next_offset < total else None,
            "cached": cached,
            "elapsed_ms": round(elapsed_ms, 3),
        }

    # -- observability ------------------------------------------------------

    def stats(self) -> dict:
        """One self-describing snapshot for the ``/stats`` endpoint."""
        with self._lock:
            server = {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "timeout_seconds": self.timeout,
                "inflight": self._inflight,
                "waiting": self._waiting,
                "draining": self._draining,
                "served": self.served,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "errors": self.errors,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
            }
        return {
            "server": server,
            "result_cache": self.results.stats,
            "kernels": kernel_info(),
            "stores": [
                handle.describe() for handle in self._stores.values()
            ],
        }

    def health(self) -> dict:
        with self._lock:
            status = "draining" if self._draining else "ok"
        return {"status": status}

    # -- lifecycle ----------------------------------------------------------

    def close(self, drain_timeout: float = 10.0) -> None:
        """Stop admitting, drain in-flight queries (bounded by
        ``drain_timeout``), then release the pool and every engine.
        Idempotent — and engine ``close()`` is idempotent below it."""
        with self._turnstile:
            self._draining = True
            self._turnstile.notify_all()
            deadline = time.monotonic() + max(drain_timeout, 0.0)
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._turnstile.wait(timeout=remaining)
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=False)
        for handle in self._stores.values():
            handle.engine.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
