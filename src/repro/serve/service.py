"""The transport-agnostic query service behind the daemon.

One :class:`QueryService` owns:

* a registry of **shared engines**, one per served store path, opened
  once (mmap-backed for ``LPDB0004`` files) and queried concurrently by
  every request thread — the plan cache is lock-protected and compiled
  plans are stateless, so one engine serves any number of threads;
* **admission control** — at most ``max_inflight`` queries execute at
  once; up to ``max_queue`` more wait (their queue time counts against
  their deadline); anything beyond that is rejected immediately with
  HTTP 429 semantics, so overload degrades to fast rejections instead of
  unbounded latency;
* a **per-query deadline** with cooperative cancellation — the request
  thread waits on the executing future for the deadline's remainder and
  answers 504 on expiry; the worker observes the cancellation at its
  checkpoints (on dequeue, after execution) so an abandoned query never
  populates the result cache and a queued-but-expired query never
  executes at all;
* the **result cache** (:mod:`repro.serve.cache`) keyed on
  ``(store fingerprint, dialect, query, pivot, kernels, force-join)`` —
  hits bypass admission control entirely, which is what makes hot
  repeated queries cheap enough for the serving benchmark's QPS floor.

Errors are typed by :class:`ServeError` carrying an HTTP status; engine
and parse errors (:class:`~repro.lpath.errors.LPathError`) map to 400,
a closed/draining service to 503, so clients always see a clean one-line
error instead of a traceback.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..columnar.kernels import kernel_info
from ..lpath.errors import LPathError
from ..plan.ir import AGGREGATE_OPS
from .cache import ResultCache

DIALECTS = ("lpath", "xpath")

#: Rows per page when the request does not say (and the ceiling any
#: request can ask for in one page; deeper pagination streams the rest).
DEFAULT_PAGE_ROWS = 1_000
MAX_PAGE_ROWS = 50_000

#: Queries one /batch request may carry.
MAX_BATCH_QUERIES = 256

#: Recent samples kept per endpoint for the latency percentiles.
LATENCY_WINDOW = 2_048


class ServeError(LPathError):
    """A request-level failure with an HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class QueryCancelled(Exception):
    """Raised inside a worker when its request gave up waiting."""


@dataclass(frozen=True)
class StoreSpec:
    """One store to serve: a compiled corpus path plus the dialect its
    labels were written for (an LPDB file records lpath- *or*
    xpath-scheme rows; the operator declares which)."""

    path: str
    dialect: str = "lpath"


class StoreHandle:
    """A served store: the shared engine plus its cached identity."""

    def __init__(self, spec: StoreSpec, engine, fingerprint: str) -> None:
        self.spec = spec
        self.engine = engine
        self.fingerprint = fingerprint

    def describe(self) -> dict:
        engine = self.engine
        return {
            "path": self.spec.path,
            "dialect": self.spec.dialect,
            "fingerprint": self.fingerprint,
            "segments": engine.segments,
            "workers": engine.workers,
            "mode": engine.mode,
            "executor": engine.executor,
            "plan_cache": engine.cache_stats(),
        }


class QueryRequest:
    """A validated query request (transport-independent)."""

    __slots__ = (
        "query", "dialect", "pivot", "count", "limit", "offset", "store",
        "timeout", "top_k", "agg",
    )

    def __init__(self, params: dict) -> None:
        query = params.get("query") if "query" in params else params.get("q")
        if not isinstance(query, str) or not query.strip():
            raise ServeError(400, "missing query text (use 'query' or 'q')")
        self.query = query
        dialect = params.get("dialect", "lpath")
        if dialect not in DIALECTS:
            raise ServeError(
                400, f"unknown dialect {dialect!r}; choose from {DIALECTS}"
            )
        self.dialect = dialect
        self.pivot = _flag(params, "pivot")
        self.count = _flag(params, "count")
        self.limit = _bounded_int(
            params, "limit", DEFAULT_PAGE_ROWS, 1, MAX_PAGE_ROWS
        )
        self.offset = _bounded_int(params, "offset", 0, 0, None)
        self.store = params.get("store") or None
        # top_k compiles an early-terminating top-k plan (and caches only
        # the truncated rows); agg evaluates an aggregate instead of rows.
        top_k = params.get("top_k")
        self.top_k = None if top_k is None else _as_int("top_k", top_k)
        if self.top_k is not None and self.top_k < 0:
            raise ServeError(400, f"top_k must be >= 0 (got {self.top_k})")
        agg = params.get("agg") or None
        if agg is not None and agg not in AGGREGATE_OPS:
            raise ServeError(
                400,
                f"unknown agg {agg!r}; choose from {', '.join(AGGREGATE_OPS)}",
            )
        self.agg = agg
        if self.agg is not None and self.top_k is not None:
            raise ServeError(400, "top_k and agg cannot be combined")
        if self.agg is not None and self.count:
            raise ServeError(400, "count and agg cannot be combined")
        timeout = params.get("timeout_ms")
        if timeout is None:
            self.timeout = None
        else:
            millis = _as_int("timeout_ms", timeout)
            if millis <= 0:
                raise ServeError(400, "timeout_ms must be a positive integer")
            self.timeout = millis / 1000.0


def _flag(params: dict, name: str) -> bool:
    value = params.get(name, False)
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        if value.lower() in ("1", "true", "yes", "on"):
            return True
        if value.lower() in ("0", "false", "no", "off", ""):
            return False
    raise ServeError(400, f"{name} must be a boolean (got {value!r})")


def _as_int(name: str, value) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise ServeError(400, f"{name} must be an integer (got {value!r})")
    try:
        return int(value)
    except ValueError:
        raise ServeError(400, f"{name} must be an integer (got {value!r})")


def _bounded_int(
    params: dict, name: str, default: int, floor: int, ceiling: Optional[int]
) -> int:
    value = params.get(name)
    if value is None:
        return default
    number = _as_int(name, value)
    if number < floor:
        raise ServeError(400, f"{name} must be >= {floor} (got {number})")
    if ceiling is not None and number > ceiling:
        raise ServeError(400, f"{name} must be <= {ceiling} (got {number})")
    return number


class _Ticket:
    """One admitted query's deadline and cancellation flag."""

    __slots__ = ("deadline", "cancelled")

    def __init__(self, deadline: float) -> None:
        self.deadline = deadline
        self.cancelled = threading.Event()

    def remaining(self) -> float:
        return self.deadline - time.monotonic()

    def check(self) -> None:
        if self.cancelled.is_set():
            raise QueryCancelled()


class QueryService:
    """Shared engines + admission control + result cache; see module doc."""

    def __init__(
        self,
        stores: Union[str, StoreSpec, Sequence[Union[str, StoreSpec]]],
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        max_inflight: int = 8,
        max_queue: int = 16,
        timeout: float = 30.0,
        result_cache_size: int = 256,
        max_cached_rows: int = 100_000,
    ) -> None:
        if max_inflight < 1:
            raise LPathError(
                f"max_inflight must be a positive int, got {max_inflight!r}"
            )
        if max_queue < 0:
            raise LPathError(f"max_queue must be >= 0, got {max_queue!r}")
        if timeout <= 0:
            raise LPathError(f"timeout must be positive, got {timeout!r}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.timeout = float(timeout)
        self.results = ResultCache(result_cache_size, max_cached_rows)
        self._stores: dict[str, StoreHandle] = {}
        self._default: Optional[str] = None
        self._lock = threading.Lock()
        self._turnstile = threading.Condition(self._lock)
        self._inflight = 0
        self._waiting = 0
        self._draining = False
        self._closed = False
        self._started = time.monotonic()
        self.served = 0
        self.rejected = 0
        self.timeouts = 0
        self.errors = 0
        # route -> [count, deque of recent seconds] for /stats percentiles.
        self._latency: dict[str, list] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve"
        )
        if isinstance(stores, (str, StoreSpec)):
            stores = [stores]
        if not stores:
            raise LPathError("QueryService needs at least one store to serve")
        try:
            for item in stores:
                spec = item if isinstance(item, StoreSpec) else StoreSpec(item)
                self._add_store(spec, workers=workers, mode=mode)
        except BaseException:
            self.close(drain_timeout=0.0)
            raise

    # -- engine registry ----------------------------------------------------

    def _add_store(
        self, spec: StoreSpec, workers: Optional[int], mode: Optional[str]
    ) -> None:
        from .. import store as store_module

        if spec.dialect not in DIALECTS:
            raise LPathError(
                f"unknown dialect {spec.dialect!r}; choose from {DIALECTS}"
            )
        if spec.path in self._stores:
            raise LPathError(f"store {spec.path!r} is already being served")
        fingerprint = store_module.store_fingerprint(spec.path)
        engine = self._open_engine(spec, workers, mode)
        self._warm(engine)
        self._stores[spec.path] = StoreHandle(spec, engine, fingerprint)
        if self._default is None:
            self._default = spec.path

    @staticmethod
    def _open_engine(spec: StoreSpec, workers: Optional[int], mode):
        from ..lpath import LPathEngine
        from ..xpath import XPathEngine

        if spec.dialect == "lpath":
            return LPathEngine.open(spec.path, workers=workers, mode=mode)
        from .. import store as store_module

        if store_module.corpus_format(spec.path) != "LPDB0004":
            raise LPathError(
                "serving the xpath dialect needs an LPDB0004 store of "
                "start/end-labeled rows (save one with "
                "repro.labeling.xpath_scheme labels and format='lpdb0004')"
            )
        return XPathEngine.from_store_mmap(
            spec.path, workers=workers, mode=mode
        )

    @staticmethod
    def _warm(engine) -> None:
        """Materialize the lazily built columnar runtimes while still
        single-threaded, so the first burst of concurrent requests finds
        every per-segment physical context already in place."""
        compilers = getattr(engine, "_compiler", None)
        segments = getattr(compilers, "segments", None)
        for compiler in (
            [segment.compiler for segment in segments]
            if segments is not None else [compilers]
        ):
            if compiler is not None and compiler.column_store is not None:
                compiler.columnar_runtime

    def _resolve(self, path: Optional[str]) -> StoreHandle:
        if path is None:
            return self._stores[self._default]
        handle = self._stores.get(path)
        if handle is None:
            raise ServeError(
                404,
                f"store {path!r} is not served here "
                f"(serving: {sorted(self._stores)})",
            )
        return handle

    # -- the request path ---------------------------------------------------

    def execute(self, params: dict) -> dict:
        """Run one validated request to a JSON-shaped response dict.

        Raises :class:`ServeError` for every failure mode (bad request,
        overload, timeout, draining); any other exception is a server
        bug the transport maps to 500."""
        request = QueryRequest(params)
        handle = self._resolve(request.store)
        key = self._result_key(handle, request)
        started = time.perf_counter()
        rows = self.results.get(key)
        cached = rows is not None
        if not cached:
            rows = self._execute_uncached(handle, request, key)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        return self._page(rows, request, cached, elapsed_ms)

    def _result_key(self, handle: StoreHandle, request: QueryRequest) -> tuple:
        try:
            key = self.results.key(
                handle.fingerprint, request.dialect, request.query,
                request.pivot, limit=request.top_k, agg=request.agg,
            )
        except ServeError:
            raise
        except LPathError as error:
            # e.g. an invalid REPRO_KERNELS value in the daemon's
            # environment — a configuration error, reported cleanly.
            raise ServeError(400, str(error))
        if request.dialect != handle.spec.dialect:
            raise ServeError(
                400,
                f"store {handle.spec.path!r} serves dialect "
                f"{handle.spec.dialect!r}, not {request.dialect!r}",
            )
        return key

    def execute_batch(self, params: dict):
        """Admit a whole batch of queries as one unit and return a
        generator streaming one response document per query, in order,
        as each completes (plus a final summary document).

        The batch shares one admission ticket and one deadline; uncached
        members execute through one shared-scan cache
        (:mod:`repro.plan.batch`), so identical scans and common step
        prefixes across the batch run once.  Result-cache integration is
        per-query: members hit and populate the cache individually under
        their own keys.  Validation errors raise :class:`ServeError`
        before anything streams; per-member failures become
        ``{"index": i, "error": ...}`` documents."""
        raw = params.get("queries")
        if not isinstance(raw, list) or not raw:
            raise ServeError(400, "batch body needs a non-empty 'queries' list")
        if len(raw) > MAX_BATCH_QUERIES:
            raise ServeError(
                400,
                f"batch of {len(raw)} queries exceeds the "
                f"{MAX_BATCH_QUERIES}-query ceiling",
            )
        defaults = {
            name: params[name]
            for name in ("dialect", "store", "pivot", "timeout_ms")
            if name in params
        }
        members = []
        for entry in raw:
            if isinstance(entry, str):
                entry = {"query": entry}
            elif not isinstance(entry, dict):
                raise ServeError(
                    400, "each batch entry must be a query string or an object"
                )
            members.append(QueryRequest({**defaults, **entry}))
        handle = self._resolve(members[0].store)
        keys = [self._result_key(handle, member) for member in members]
        if any(member.store != members[0].store for member in members):
            raise ServeError(
                400, "all queries in one batch must target the same store"
            )
        budget = self.timeout
        timeouts = [m.timeout for m in members if m.timeout is not None]
        if timeouts:
            budget = min(budget, *timeouts)
        ticket = _Ticket(time.monotonic() + budget)
        self._admit(ticket)
        return self._stream_batch(handle, members, keys, ticket)

    def _stream_batch(self, handle, members, keys, ticket):
        from ..plan.batch import BatchState

        batch_started = time.perf_counter()
        completed = 0
        try:
            # Compile every uncached member up front (through the plan
            # cache) so the shared-prefix refcounts see the whole batch;
            # a member that fails to compile streams an error document.
            compiled: dict[int, object] = {}
            failures: dict[int, str] = {}
            for index, member in enumerate(members):
                if keys[index] in self.results:  # hit counted on its turn
                    continue
                try:
                    compiled[index] = handle.engine.compile(
                        member.query, pivot=member.pivot,
                        limit=member.top_k, agg=member.agg,
                    )
                except LPathError as error:
                    failures[index] = str(error)
            state = BatchState(list(compiled.values()))
            for index, member in enumerate(members):
                started = time.perf_counter()
                if failures.get(index) is not None:
                    with self._lock:
                        self.errors += 1
                    yield {"index": index, "error": failures[index]}
                    continue
                if ticket.remaining() <= 0:
                    with self._lock:
                        self.timeouts += 1
                    yield {
                        "index": index,
                        "error": "batch exceeded its deadline",
                    }
                    break
                rows = self.results.get(keys[index])
                cached = rows is not None
                try:
                    if not cached:
                        plan = compiled.get(index)
                        if plan is None:
                            # A racing request cached this result after
                            # the upfront pass; recompile is a plan-cache
                            # hit.
                            plan = handle.engine.compile(
                                member.query, pivot=member.pivot,
                                limit=member.top_k, agg=member.agg,
                            )
                            rows = self._shape(state.execute_one(plan))
                        else:
                            rows = self._shape(state.execute_one(plan))
                        self.results.put_rows(keys[index], rows)
                        with self._lock:
                            self.served += 1
                except LPathError as error:
                    with self._lock:
                        self.errors += 1
                    yield {"index": index, "error": str(error)}
                    continue
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                document = self._page(rows, member, cached, elapsed_ms)
                document["index"] = index
                completed += 1
                yield document
            yield {
                "done": completed == len(members),
                "queries": len(members),
                "completed": completed,
                "elapsed_ms": round(
                    (time.perf_counter() - batch_started) * 1000.0, 3
                ),
            }
        finally:
            self._release()

    @staticmethod
    def _shape(result) -> tuple:
        """Normalize a batch member's result to the cacheable tuple shape
        (:meth:`_evaluate`'s contract)."""
        if isinstance(result, dict):
            return tuple(sorted(result.items()))
        return tuple(result)

    def record_latency(self, route: str, seconds: float) -> None:
        """Feed one request's wall time into the per-endpoint window
        (the transport calls this once per handled request)."""
        with self._lock:
            bucket = self._latency.get(route)
            if bucket is None:
                bucket = self._latency[route] = [
                    0, deque(maxlen=LATENCY_WINDOW)
                ]
            bucket[0] += 1
            bucket[1].append(seconds)

    def _endpoint_stats(self) -> dict:
        """Per-endpoint counts and latency percentiles over the recent
        window (caller holds the lock)."""
        endpoints = {}
        for route, (count, samples) in sorted(self._latency.items()):
            ordered = sorted(samples)
            last = len(ordered) - 1
            endpoints[route] = {
                "count": count,
                "p50_ms": round(ordered[int(last * 0.50)] * 1000.0, 3),
                "p99_ms": round(ordered[int(last * 0.99)] * 1000.0, 3),
            }
        return endpoints

    def _execute_uncached(
        self, handle: StoreHandle, request: QueryRequest, key: tuple
    ) -> tuple:
        budget = self.timeout
        if request.timeout is not None:
            budget = min(budget, request.timeout)
        ticket = _Ticket(time.monotonic() + budget)
        self._admit(ticket)
        try:
            future = self._pool.submit(self._run, handle, request, ticket)
            try:
                rows = future.result(timeout=max(ticket.remaining(), 0.0))
            except FutureTimeout:
                ticket.cancelled.set()
                with self._lock:
                    self.timeouts += 1
                raise ServeError(
                    504,
                    f"query exceeded its {budget:g}s deadline "
                    "(still cancelling cooperatively)",
                )
            except QueryCancelled:
                raise ServeError(504, "query was cancelled")
            except ServeError:
                raise
            except LPathError as error:
                with self._lock:
                    self.errors += 1
                status = 503 if "closed" in str(error) else 400
                raise ServeError(status, str(error))
            self.results.put_rows(key, rows)
            with self._lock:
                self.served += 1
            return rows
        finally:
            self._release()

    def _run(self, handle: StoreHandle, request: QueryRequest, ticket):
        """The worker side: cooperative-cancellation checkpoints wrap
        the engine call (which itself is not interruptible)."""
        ticket.check()  # expired or abandoned while queued in the pool
        rows = self._evaluate(handle, request)
        ticket.check()  # abandoned mid-flight: never cache, never return
        return rows

    @staticmethod
    def _evaluate(handle: StoreHandle, request: QueryRequest) -> tuple:
        """One engine call to the cacheable result shape: ``(tid, id)``
        rows (already top-k-truncated under ``top_k``), or sorted
        ``(group, count)`` pairs for an aggregate — the key's ``agg``
        dimension disambiguates the two shapes on the way back out."""
        if request.agg is not None:
            result = handle.engine.aggregate(
                request.query, agg=request.agg, pivot=request.pivot
            )
            return tuple(sorted(result.items()))
        return tuple(
            handle.engine.query(
                request.query, pivot=request.pivot, limit=request.top_k
            )
        )

    def _admit(self, ticket: _Ticket) -> None:
        with self._turnstile:
            if self._draining:
                raise ServeError(503, "server is draining")
            if self._inflight < self.max_inflight:
                self._inflight += 1
                return
            if self._waiting >= self.max_queue:
                self.rejected += 1
                raise ServeError(
                    429,
                    f"server is at capacity ({self.max_inflight} in flight, "
                    f"{self._waiting} queued); retry later",
                )
            self._waiting += 1
            try:
                while self._inflight >= self.max_inflight:
                    remaining = ticket.remaining()
                    if remaining <= 0 or self._draining:
                        status, message = (
                            (503, "server is draining")
                            if self._draining
                            else (504, "query expired while queued")
                        )
                        if status == 504:
                            self.timeouts += 1
                        raise ServeError(status, message)
                    self._turnstile.wait(timeout=remaining)
                self._inflight += 1
            finally:
                self._waiting -= 1

    def _release(self) -> None:
        with self._turnstile:
            self._inflight -= 1
            self._turnstile.notify_all()

    @staticmethod
    def _page(
        rows: tuple, request: QueryRequest, cached: bool, elapsed_ms: float
    ) -> dict:
        if request.agg is not None:
            return {
                "agg": request.agg,
                "aggregate": [[group, count] for group, count in rows],
                "cached": cached,
                "elapsed_ms": round(elapsed_ms, 3),
            }
        total = len(rows)
        if request.count:
            return {
                "total": total,
                "count": total,
                "cached": cached,
                "elapsed_ms": round(elapsed_ms, 3),
            }
        window = rows[request.offset:request.offset + request.limit]
        next_offset = request.offset + len(window)
        return {
            "total": total,
            "offset": request.offset,
            "limit": request.limit,
            "matches": [list(pair) for pair in window],
            "next_offset": next_offset if next_offset < total else None,
            "cached": cached,
            "elapsed_ms": round(elapsed_ms, 3),
        }

    # -- observability ------------------------------------------------------

    def stats(self) -> dict:
        """One self-describing snapshot for the ``/stats`` endpoint."""
        with self._lock:
            server = {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "timeout_seconds": self.timeout,
                "inflight": self._inflight,
                "waiting": self._waiting,
                "draining": self._draining,
                "served": self.served,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "errors": self.errors,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
            }
            endpoints = self._endpoint_stats()
        return {
            "server": server,
            "endpoints": endpoints,
            "result_cache": self.results.stats,
            "kernels": kernel_info(),
            "stores": [
                handle.describe() for handle in self._stores.values()
            ],
        }

    def health(self) -> dict:
        with self._lock:
            status = "draining" if self._draining else "ok"
        return {"status": status}

    # -- lifecycle ----------------------------------------------------------

    def close(self, drain_timeout: float = 10.0) -> None:
        """Stop admitting, drain in-flight queries (bounded by
        ``drain_timeout``), then release the pool and every engine.
        Idempotent — and engine ``close()`` is idempotent below it."""
        with self._turnstile:
            self._draining = True
            self._turnstile.notify_all()
            deadline = time.monotonic() + max(drain_timeout, 0.0)
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._turnstile.wait(timeout=remaining)
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=False)
        for handle in self._stores.values():
            handle.engine.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
