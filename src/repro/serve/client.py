"""A small stdlib client for the query daemon.

One :class:`ServeClient` holds one persistent HTTP/1.1 connection (the
daemon keeps connections alive), auto-paginates result sets, and turns
server error documents into :class:`ServeClientError` — an
:class:`~repro.lpath.errors.LPathError`, so the CLI reports daemon
failures through the same clean one-line path as local engine errors.

Not thread-safe: give each load-generator thread its own client (the
serving benchmark does exactly that).
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException
from typing import Optional
from urllib.parse import urlencode, urlsplit

from ..lpath.errors import LPathError


class ServeClientError(LPathError):
    """An error response from the daemon (or a transport failure)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """Query a running daemon at ``url`` (e.g. ``http://127.0.0.1:8411``)."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme != "http" or not parts.hostname:
            raise ServeClientError(
                0, f"unsupported server url {url!r} (need http://host:port)"
            )
        self._host = parts.hostname
        self._port = parts.port or 80
        self._timeout = timeout
        self._connection: Optional[HTTPConnection] = None

    # -- transport ----------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[dict] = None):
        payload = None
        headers = {"Accept": "application/json"}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # One retry on a dead keep-alive connection (the daemon may have
        # been restarted, or an idle connection timed out).
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = HTTPConnection(
                    self._host, self._port, timeout=self._timeout
                )
            try:
                self._connection.request(method, path, payload, headers)
                response = self._connection.getresponse()
                raw = response.read()
                break
            except (ConnectionError, HTTPException, OSError) as error:
                self.close()
                if attempt:
                    raise ServeClientError(
                        0,
                        f"cannot reach daemon at "
                        f"http://{self._host}:{self._port}: {error}",
                    )
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServeClientError(
                response.status,
                f"daemon returned non-JSON ({response.status}): {raw[:200]!r}",
            )
        if response.status != 200:
            message = document.get("error", raw.decode("utf-8", "replace"))
            raise ServeClientError(
                response.status, f"daemon error {response.status}: {message}"
            )
        return document

    def _request_ndjson(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> list[dict]:
        """Like :meth:`_request`, but for NDJSON streaming endpoints:
        the de-chunked body is split on newlines and each line parsed as
        its own document.  Error responses are plain JSON and surface
        exactly as they do for ``_request``."""
        payload = None
        headers = {"Accept": "application/x-ndjson"}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = HTTPConnection(
                    self._host, self._port, timeout=self._timeout
                )
            try:
                self._connection.request(method, path, payload, headers)
                response = self._connection.getresponse()
                raw = response.read()
                break
            except (ConnectionError, HTTPException, OSError) as error:
                self.close()
                if attempt:
                    raise ServeClientError(
                        0,
                        f"cannot reach daemon at "
                        f"http://{self._host}:{self._port}: {error}",
                    )
        try:
            documents = [
                json.loads(line)
                for line in raw.decode("utf-8").splitlines()
                if line.strip()
            ]
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServeClientError(
                response.status,
                f"daemon returned non-NDJSON ({response.status}): "
                f"{raw[:200]!r}",
            )
        if response.status != 200:
            message = (
                documents[0].get("error", "")
                if documents else raw.decode("utf-8", "replace")
            )
            raise ServeClientError(
                response.status, f"daemon error {response.status}: {message}"
            )
        return documents

    # -- the query surface --------------------------------------------------

    def query_page(self, query: str, offset: int = 0, **options) -> dict:
        """One page of results, exactly as the daemon shaped it."""
        body = {"query": query, "offset": offset}
        body.update(
            {key: value for key, value in options.items() if value is not None}
        )
        return self._request("POST", "/query", body)

    def query(
        self,
        query: str,
        dialect: str = "lpath",
        pivot: bool = False,
        limit: Optional[int] = None,
        store: Optional[str] = None,
        timeout_ms: Optional[int] = None,
        top_k: Optional[int] = None,
    ) -> list[tuple[int, int]]:
        """All matching ``(tid, id)`` pairs, following pagination until
        the daemon reports no next page.  ``top_k=k`` asks the server
        for an early-terminating top-k plan (``limit`` is just the page
        size)."""
        rows: list[tuple[int, int]] = []
        offset = 0
        while True:
            page = self.query_page(
                query, offset=offset, dialect=dialect, pivot=pivot,
                limit=limit, store=store, timeout_ms=timeout_ms,
                top_k=top_k,
            )
            rows.extend(tuple(pair) for pair in page["matches"])
            if page.get("next_offset") is None:
                return rows
            offset = page["next_offset"]

    def aggregate(
        self,
        query: str,
        agg: str = "count",
        dialect: str = "lpath",
        pivot: bool = False,
        store: Optional[str] = None,
        timeout_ms: Optional[int] = None,
    ) -> dict:
        """The server-side aggregate (``{"count": n}`` or ``{group: n}``),
        evaluated without materializing or shipping any rows."""
        page = self.query_page(
            query, agg=agg, dialect=dialect, pivot=pivot, store=store,
            timeout_ms=timeout_ms,
        )
        return {group: count for group, count in page["aggregate"]}

    def query_batch(
        self,
        queries: list,
        dialect: str = "lpath",
        pivot: bool = False,
        store: Optional[str] = None,
        timeout_ms: Optional[int] = None,
    ) -> list[dict]:
        """Submit a whole batch to ``POST /batch`` and collect the
        streamed per-query documents, in order (the trailing summary
        document is validated and dropped).  Each entry is a query
        string or an object with ``query`` plus optional ``top_k`` /
        ``agg`` / ``pivot`` / ``count`` keys."""
        body = {"queries": queries, "dialect": dialect, "pivot": pivot}
        if store is not None:
            body["store"] = store
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        documents = self._request_ndjson("POST", "/batch", body)
        if not documents or "done" not in documents[-1]:
            raise ServeClientError(
                0, "batch stream ended without a summary document"
            )
        summary = documents.pop()
        if len(documents) != len(queries) or not summary.get("done"):
            raise ServeClientError(
                0,
                f"batch returned {summary.get('completed')} of "
                f"{len(queries)} results: "
                f"{documents[-1].get('error') if documents else 'no output'}",
            )
        return documents

    def count(
        self,
        query: str,
        dialect: str = "lpath",
        pivot: bool = False,
        store: Optional[str] = None,
        timeout_ms: Optional[int] = None,
    ) -> int:
        """The result-set size (one round trip, no rows shipped)."""
        page = self.query_page(
            query, count=True, dialect=dialect, pivot=pivot, store=store,
            timeout_ms=timeout_ms,
        )
        return page["total"]

    def get_query(self, **params) -> dict:
        """The GET form of ``/query`` (used by tests to pin the query
        string surface; ``q=...&count=1&...``)."""
        return self._request("GET", "/query?" + urlencode(params))

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
