"""A small stdlib client for the query daemon.

One :class:`ServeClient` holds one persistent HTTP/1.1 connection (the
daemon keeps connections alive), auto-paginates result sets, and turns
server error documents into :class:`ServeClientError` — an
:class:`~repro.lpath.errors.LPathError`, so the CLI reports daemon
failures through the same clean one-line path as local engine errors.

The transport is fault-tolerant in two layers:

1. A request that dies on a **reused** keep-alive connection before any
   response arrives is retried once immediately on a fresh connection.
   A stale keep-alive (the daemon restarted, or an idle connection
   timed out under the client) says nothing about server health, so the
   free retry doesn't consume a backoff attempt — and because the
   request never started executing, the retry can't double-execute
   anything.
2. Transport failures on a *fresh* connection and transient server
   answers (**429** overload/breaker, **503** draining/quarantine) are
   retried up to ``max_retries`` times with capped exponential backoff
   and deterministic jitter, honoring the server's ``Retry-After`` hint
   (clamped to ``backoff_cap`` so a chaos run can't stall a test
   suite).  Permanent errors (400/404) never retry.  ``max_retries=0``
   turns layer 2 off — load tests that count 429s byte-for-byte want
   exactly one attempt.

Not thread-safe: give each load-generator thread its own client (the
serving benchmark does exactly that).
"""

from __future__ import annotations

import json
import random
import time
from http.client import HTTPConnection, HTTPException
from typing import Optional
from urllib.parse import urlencode, urlsplit

from ..lpath.errors import LPathError

#: Statuses worth retrying: the condition is declared transient by the
#: server (overload sheds, drains and quarantines end).
TRANSIENT_STATUSES = (429, 503)


class ServeClientError(LPathError):
    """An error response from the daemon (or a transport failure).

    ``transient`` mirrors the server's classification (transport
    failures count as transient: the daemon may simply be restarting);
    ``retry_after`` is the server's ``Retry-After`` hint in seconds when
    one was sent."""

    def __init__(
        self,
        status: int,
        message: str,
        transient: Optional[bool] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        if transient is None:
            transient = status == 0 or status in TRANSIENT_STATUSES
        self.transient = transient
        self.retry_after = retry_after


class ServeClient:
    """Query a running daemon at ``url`` (e.g. ``http://127.0.0.1:8411``).

    ``max_retries`` bounds the backoff layer (see the module doc);
    ``backoff_base``/``backoff_cap`` shape the exponential delay; the
    jitter stream is seeded (``retry_seed``) so a chaos matrix replays
    the same sleep schedule every run."""

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_seed: int = 0,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme != "http" or not parts.hostname:
            raise ServeClientError(
                0, f"unsupported server url {url!r} (need http://host:port)"
            )
        if max_retries < 0:
            raise ServeClientError(
                0, f"max_retries must be >= 0, got {max_retries!r}"
            )
        self._host = parts.hostname
        self._port = parts.port or 80
        self._timeout = timeout
        self._connection: Optional[HTTPConnection] = None
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._jitter = random.Random(retry_seed)
        #: Transport-level retry observability (tests assert on these).
        self.reconnects = 0
        self.backoffs = 0

    # -- transport ----------------------------------------------------------

    def _backoff_delay(
        self, attempt: int, retry_after: Optional[str]
    ) -> float:
        """Capped exponential backoff with deterministic jitter in
        [0.5x, 1.5x), raised to the server's ``Retry-After`` when that
        is larger (but never past the cap)."""
        delay = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        delay *= 0.5 + self._jitter.random()
        if retry_after:
            try:
                delay = max(delay, float(retry_after))
            except ValueError:
                pass
        return min(delay, self.backoff_cap)

    def _roundtrip(
        self,
        method: str,
        path: str,
        payload: Optional[bytes],
        headers: dict,
        retry_transient: bool = True,
    ):
        """One HTTP exchange under the full retry policy; returns
        ``(response, raw_body)`` for any status the policy lets
        through."""
        attempt = 0
        while True:
            fresh = self._connection is None
            if fresh:
                self._connection = HTTPConnection(
                    self._host, self._port, timeout=self._timeout
                )
            try:
                self._connection.request(method, path, payload, headers)
                response = self._connection.getresponse()
                raw = response.read()
            except (ConnectionError, HTTPException, OSError) as error:
                self.close()
                if not fresh:
                    # Stale keep-alive: retry immediately on a fresh
                    # connection, outside the backoff budget.
                    self.reconnects += 1
                    continue
                if not retry_transient or attempt >= self.max_retries:
                    raise ServeClientError(
                        0,
                        f"cannot reach daemon at "
                        f"http://{self._host}:{self._port}: {error}",
                    )
                self.backoffs += 1
                time.sleep(self._backoff_delay(attempt, None))
                attempt += 1
                continue
            if (
                retry_transient
                and response.status in TRANSIENT_STATUSES
                and attempt < self.max_retries
            ):
                self.backoffs += 1
                time.sleep(
                    self._backoff_delay(
                        attempt, response.getheader("Retry-After")
                    )
                )
                attempt += 1
                continue
            return response, raw

    @staticmethod
    def _error(response, document) -> "ServeClientError":
        message = document.get("error", "") if isinstance(document, dict) \
            else str(document)
        retry_after = response.getheader("Retry-After")
        return ServeClientError(
            response.status,
            f"daemon error {response.status}: {message}",
            transient=(
                document.get("transient")
                if isinstance(document, dict) and "transient" in document
                else None
            ),
            retry_after=float(retry_after) if retry_after else None,
        )

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        retry_transient: bool = True,
    ):
        payload = None
        headers = {"Accept": "application/json"}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        response, raw = self._roundtrip(
            method, path, payload, headers, retry_transient=retry_transient
        )
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServeClientError(
                response.status,
                f"daemon returned non-JSON ({response.status}): {raw[:200]!r}",
            )
        if response.status != 200:
            raise self._error(response, document)
        return document

    def _request_ndjson(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> list[dict]:
        """Like :meth:`_request`, but for NDJSON streaming endpoints:
        the de-chunked body is split on newlines and each line parsed as
        its own document.  Error responses are plain JSON and surface
        exactly as they do for ``_request``."""
        payload = None
        headers = {"Accept": "application/x-ndjson"}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        response, raw = self._roundtrip(method, path, payload, headers)
        try:
            documents = [
                json.loads(line)
                for line in raw.decode("utf-8").splitlines()
                if line.strip()
            ]
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServeClientError(
                response.status,
                f"daemon returned non-NDJSON ({response.status}): "
                f"{raw[:200]!r}",
            )
        if response.status != 200:
            raise self._error(
                response, documents[0] if documents else {}
            )
        return documents

    # -- the query surface --------------------------------------------------

    def query_page(self, query: str, offset: int = 0, **options) -> dict:
        """One page of results, exactly as the daemon shaped it."""
        body = {"query": query, "offset": offset}
        body.update(
            {key: value for key, value in options.items() if value is not None}
        )
        return self._request("POST", "/query", body)

    def query(
        self,
        query: str,
        dialect: str = "lpath",
        pivot: bool = False,
        limit: Optional[int] = None,
        store: Optional[str] = None,
        timeout_ms: Optional[int] = None,
        top_k: Optional[int] = None,
    ) -> list[tuple[int, int]]:
        """All matching ``(tid, id)`` pairs, following pagination until
        the daemon reports no next page.  ``top_k=k`` asks the server
        for an early-terminating top-k plan (``limit`` is just the page
        size)."""
        rows: list[tuple[int, int]] = []
        offset = 0
        while True:
            page = self.query_page(
                query, offset=offset, dialect=dialect, pivot=pivot,
                limit=limit, store=store, timeout_ms=timeout_ms,
                top_k=top_k,
            )
            rows.extend(tuple(pair) for pair in page["matches"])
            if page.get("next_offset") is None:
                return rows
            offset = page["next_offset"]

    def append(
        self,
        trees: str,
        store: Optional[str] = None,
    ) -> dict:
        """Durably append bracketed ``trees`` text to a served live
        corpus; returns the daemon's acknowledgement (tree/row counts,
        first tid, generation, fingerprint).

        Appends are **not idempotent**, so the transient-retry policy is
        off for this call: a 503 means the rows were not acknowledged
        and the caller may retry explicitly, but an automatic replay
        after an ambiguous transport failure could double-append."""
        body: dict = {"trees": trees}
        if store is not None:
            body["store"] = store
        return self._request(
            "POST", "/append", body, retry_transient=False
        )

    def aggregate(
        self,
        query: str,
        agg: str = "count",
        dialect: str = "lpath",
        pivot: bool = False,
        store: Optional[str] = None,
        timeout_ms: Optional[int] = None,
    ) -> dict:
        """The server-side aggregate (``{"count": n}`` or ``{group: n}``),
        evaluated without materializing or shipping any rows."""
        page = self.query_page(
            query, agg=agg, dialect=dialect, pivot=pivot, store=store,
            timeout_ms=timeout_ms,
        )
        return {group: count for group, count in page["aggregate"]}

    def query_batch(
        self,
        queries: list,
        dialect: str = "lpath",
        pivot: bool = False,
        store: Optional[str] = None,
        timeout_ms: Optional[int] = None,
    ) -> list[dict]:
        """Submit a whole batch to ``POST /batch`` and collect the
        streamed per-query documents, in order (the trailing summary
        document is validated and dropped).  Each entry is a query
        string or an object with ``query`` plus optional ``top_k`` /
        ``agg`` / ``pivot`` / ``count`` keys."""
        body = {"queries": queries, "dialect": dialect, "pivot": pivot}
        if store is not None:
            body["store"] = store
        if timeout_ms is not None:
            body["timeout_ms"] = timeout_ms
        documents = self._request_ndjson("POST", "/batch", body)
        if not documents or "done" not in documents[-1]:
            raise ServeClientError(
                0, "batch stream ended without a summary document"
            )
        summary = documents.pop()
        if len(documents) != len(queries) or not summary.get("done"):
            raise ServeClientError(
                0,
                f"batch returned {summary.get('completed')} of "
                f"{len(queries)} results: "
                f"{documents[-1].get('error') if documents else 'no output'}",
            )
        return documents

    def count(
        self,
        query: str,
        dialect: str = "lpath",
        pivot: bool = False,
        store: Optional[str] = None,
        timeout_ms: Optional[int] = None,
    ) -> int:
        """The result-set size (one round trip, no rows shipped)."""
        page = self.query_page(
            query, count=True, dialect=dialect, pivot=pivot, store=store,
            timeout_ms=timeout_ms,
        )
        return page["total"]

    def get_query(self, **params) -> dict:
        """The GET form of ``/query`` (used by tests to pin the query
        string surface; ``q=...&count=1&...``)."""
        return self._request("GET", "/query?" + urlencode(params))

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def health(self) -> dict:
        """Liveness (``/healthz``): answers while the daemon process is
        up, regardless of store health."""
        return self._request("GET", "/healthz")

    def ready(self) -> dict:
        """Readiness (``/readyz``): the probe document, whatever the
        status — a not-ready 503 is an *answer* here, not a failure, so
        it is returned (``{"ready": false, ...}``) instead of raising or
        retrying."""
        response, raw = self._roundtrip(
            "GET", "/readyz", None, {"Accept": "application/json"},
            retry_transient=False,
        )
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServeClientError(
                response.status,
                f"daemon returned non-JSON ({response.status}): {raw[:200]!r}",
            )
        if response.status not in (200, 503):
            raise self._error(response, document)
        return document

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
