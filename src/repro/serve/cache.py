"""The serving layer's result cache.

A long-lived daemon sees the same hot queries over and over (the fig6b
"rare tag" pattern: many users, few distinct queries), so the service
memoizes *result sets*, not just compiled plans.  The cache is a
:class:`~repro.plan.cache.PlanCache` — the same lock-protected LRU with
hit/miss/eviction counters the engines use for plans — holding immutable
tuples of ``(tid, id)`` pairs.

Keying mirrors :func:`repro.plan.cache.compile_options_key` and adds the
serving dimensions: the **store fingerprint**
(:func:`repro.store.store_fingerprint` — content-derived, so two daemons
serving byte-identical copies share semantics, and replacing the file on
disk can never serve stale rows after a reload) and the **dialect**.
The kernel backend and the ``REPRO_FORCE_JOIN`` override stay in the key
even though every backend must return identical rows: the differential
test layer deliberately queries the same store under both backends, and
a result cached under one backend must never mask a divergence in the
other.

Every entry additionally carries a CRC-32 **integrity digest** taken at
insert time and re-checked on every hit: a poisoned or torn entry (the
``cache_poison`` fault point in :mod:`repro.faults`, or any real
in-process corruption) is dropped and served as a miss — the query
re-executes and the ``integrity_failures`` counter records the save.
The cache can return a stale-but-correct result or nothing; it can
never return corrupted rows.
"""

from __future__ import annotations

import zlib
from typing import Optional

from ..faults import poisoned_rows
from ..plan.cache import PlanCache, compile_options_key


def rows_digest(rows: tuple) -> int:
    """A CRC-32 over the canonical text of a result tuple.  Results are
    tuples of ``(tid, id)`` int pairs or sorted ``(group, count)`` pairs
    — ``repr`` is deterministic for both."""
    return zlib.crc32(repr(rows).encode("utf-8"))


class ResultCache(PlanCache):
    """An LRU of fully materialized result sets.

    ``max_rows`` bounds the size of any single cached entry: a query
    that matches half the corpus would evict the whole working set of
    hot small results for one giant one, so oversized results are simply
    not cached (the ``oversize`` counter records how often).
    """

    def __init__(self, maxsize: int = 256, max_rows: int = 100_000) -> None:
        super().__init__(maxsize)
        self.max_rows = max_rows
        self.oversize = 0
        self.integrity_failures = 0

    @staticmethod
    def key(
        fingerprint: str, dialect: str, query: str, pivot: bool,
        executor: str = "columnar",
        limit: Optional[int] = None, agg: Optional[str] = None,
    ) -> tuple:
        """The full result identity: serving dimensions + everything a
        compiled plan's output depends on.  ``limit`` is the plan's
        top-k — a top-k entry holds only the truncated k rows, so a
        limited query can never pin a full result set in the cache (and
        a full-result entry is never truncated to serve a limited
        request).  Raises :class:`~repro.lpath.errors.LPathError` for an
        invalid ``REPRO_KERNELS`` environment, exactly like compiling
        would."""
        return (fingerprint, dialect) + compile_options_key(
            query, pivot, executor, limit=limit, agg=agg
        )

    def put_rows(self, key: tuple, rows: tuple) -> bool:
        """Cache a result set unless it exceeds ``max_rows``; returns
        whether the entry was stored.  The entry carries a digest of the
        rows as handed in — taken *before* the ``cache_poison`` fault
        point gets a chance to corrupt what is stored, so injected
        corruption is guaranteed detectable on the way out."""
        if len(rows) > self.max_rows:
            with self._lock:
                self.oversize += 1
            return False
        self.put(key, (rows_digest(rows), poisoned_rows(rows)))
        return True

    def get_rows(self, key: tuple):
        """The cached result set for ``key`` — integrity-checked — or
        ``None``.  An entry whose rows no longer match their insert-time
        digest is dropped and reported as a miss; the caller re-executes
        and the corruption can never reach a client."""
        entry = self.get(key)
        if entry is None:
            return None
        digest, rows = entry
        if rows_digest(rows) == digest:
            return rows
        with self._lock:
            self.integrity_failures += 1
            self.hits -= 1
            self.misses += 1
            self._entries.pop(key, None)
        return None

    @property
    def stats(self) -> dict[str, int]:
        """The PlanCache counters plus the oversize-rejection and
        integrity-failure counts."""
        snapshot = PlanCache.stats.fget(self)
        with self._lock:
            snapshot["oversize"] = self.oversize
            snapshot["integrity_failures"] = self.integrity_failures
            snapshot["max_rows"] = self.max_rows
        return snapshot


def cached_rows(cache: Optional[ResultCache], key: tuple):
    """The cached result set for ``key``, or ``None`` (a disabled cache
    — ``maxsize=0`` still counts lookups, keeping hit-rate math honest)."""
    if cache is None:
        return None
    return cache.get_rows(key)
