"""Recursive-descent parser for LPath (Figure 4 grammar + XPath 1.0 core).

Disambiguation rules (documented here because the surface syntax reuses
symbols):

* ``<=`` after a *path* continues the path as the immediate-preceding-
  sibling axis; after a function call, number or literal it is the
  comparison operator (e.g. ``position()<=3``).
* A bare name on the right-hand side of a comparison is a string literal
  (``[@lex=saw]``), matching the paper's query syntax; on the left-hand
  side a bare name is a child-axis path, as in XPath (``[NP]``).
* A scope ``{...}`` must be the last item of its (sub)path — the grammar
  ``RLP ::= HP | HP '{' RLP '}'`` never resumes after a closing brace.
"""

from __future__ import annotations

from typing import Optional

from . import lexer as lx
from .ast import (
    AndExpr,
    Comparison,
    FunctionCall,
    Literal,
    NodeTest,
    NotExpr,
    Number,
    OrExpr,
    Path,
    PathExists,
    PathItem,
    PredicateExpr,
    Scope,
    Step,
    WILDCARD,
)
from .axes import Axis, NAMED_AXES
from .errors import LPathSyntaxError
from .functions import validate_call

#: Tokens that may begin a step in a relative path (plus NAME/AT/STRING).
_PATH_START_KINDS = frozenset(
    {lx.DSLASH, lx.SLASH, lx.BACKSLASH, lx.ARROW, lx.DOT, lx.DDOT, lx.AT, lx.LBRACE}
)
#: Comparison operators (``<=`` arrives as an ARROW token, handled separately).
_COMPARISON_OPS = frozenset({"=", "!=", "<", ">", ">="})


class _Parser:
    def __init__(self, query: str) -> None:
        self.query = query
        self.tokens = lx.tokenize(query)
        self.position = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self, offset: int = 0) -> lx.Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> lx.Token:
        token = self.tokens[self.position]
        if token.kind != lx.EOF:
            self.position += 1
        return token

    def expect(self, kind: str) -> lx.Token:
        token = self.peek()
        if token.kind != kind:
            self.fail(f"expected {kind} but found {token.text or 'end of query'!r}")
        return self.advance()

    def fail(self, message: str) -> None:
        raise LPathSyntaxError(message, self.query, self.peek().position)

    # -- queries ------------------------------------------------------------

    def parse_query(self) -> Path:
        token = self.peek()
        if token.kind not in (lx.DSLASH, lx.SLASH):
            self.fail("a query must start with '/' or '//'")
        items = self.parse_items(first=True)
        if self.peek().kind != lx.EOF:
            self.fail(f"unexpected trailing {self.peek().text!r}")
        if not items:
            self.fail("empty query")
        return Path(tuple(items), absolute=True)

    # -- paths ----------------------------------------------------------------

    def parse_relative_path(self) -> Path:
        items = self.parse_items(first=True, relative=True)
        if not items:
            self.fail("expected a path")
        return Path(tuple(items), absolute=False)

    def parse_items(self, first: bool, relative: bool = False) -> list[PathItem]:
        items: list[PathItem] = []
        while True:
            token = self.peek()
            if token.kind == lx.LBRACE:
                if not items and not relative:
                    self.fail("a scope needs a head path or a context node")
                self.advance()
                body = self.parse_items(first=True, relative=True)
                if not body:
                    self.fail("empty scope '{}'")
                self.expect(lx.RBRACE)
                items.append(Scope(Path(tuple(body))))
                if self.peek().kind in _PATH_START_KINDS:
                    self.fail("no steps may follow a closing '}'")
                return items
            step = self.try_parse_step(is_first=first and not items, relative=relative)
            if step is None:
                return items
            items.append(step)
            first = False

    def try_parse_step(self, is_first: bool, relative: bool) -> Optional[Step]:
        token = self.peek()
        if token.kind == lx.DSLASH:
            self.advance()
            return self.finish_step(Axis.DESCENDANT)
        if token.kind == lx.SLASH:
            self.advance()
            if self.peek().kind == lx.AT:  # /@lex — the attribute axis
                self.advance()
                name = self.node_name()
                return self.finish_step(
                    Axis.ATTRIBUTE, test=NodeTest(name, is_attribute=True)
                )
            if self.peek().kind == lx.DOT:  # /. — XPath self abbreviation
                self.advance()
                return self.finish_step(Axis.SELF, implicit_wildcard=True)
            if self.peek().kind == lx.DDOT:  # /.. — XPath parent abbreviation
                self.advance()
                return self.finish_step(Axis.PARENT, implicit_wildcard=True)
            axis = self.named_axis_or(Axis.CHILD)
            return self.finish_step(axis)
        if token.kind == lx.BACKSLASH:
            self.advance()
            axis = self.named_axis_or(Axis.PARENT)
            if axis not in (Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
                self.fail("'\\' only takes the ancestor axes")
            return self.finish_step(axis)
        if token.kind == lx.ARROW:
            self.advance()
            return self.finish_step(token.axis)
        if token.kind == lx.DOT:
            self.advance()
            return self.finish_step(Axis.SELF, implicit_wildcard=True)
        if token.kind == lx.DDOT:
            self.advance()
            return self.finish_step(Axis.PARENT, implicit_wildcard=True)
        if token.kind == lx.AT:
            self.advance()
            name = self.node_name()
            return self.finish_step(
                Axis.ATTRIBUTE, test=NodeTest(name, is_attribute=True)
            )
        if is_first and relative:
            # Leading steps of relative paths may omit the axis marker:
            # `self::NP`, `following-sibling::_`, bare `NP` (child axis).
            if token.kind in (lx.NAME, lx.STRING, lx.CARET):
                axis = self.named_axis_or(Axis.CHILD)
                return self.finish_step(axis)
        return None

    def named_axis_or(self, default: Axis) -> Axis:
        """Consume ``axisname::`` when present, else use the default axis."""
        token = self.peek()
        if token.kind == lx.NAME and self.peek(1).kind == lx.COLONCOLON:
            axis = NAMED_AXES.get(token.text)
            if axis is None:
                self.fail(f"unknown axis {token.text!r}")
            self.advance()
            self.advance()
            if axis is Axis.ATTRIBUTE:
                # attribute::lex — normalize to the @ form downstream.
                return Axis.ATTRIBUTE
            return axis
        return default

    def finish_step(
        self,
        axis: Axis,
        test: Optional[NodeTest] = None,
        implicit_wildcard: bool = False,
    ) -> Step:
        left_aligned = False
        if test is None and not implicit_wildcard:
            if self.peek().kind == lx.CARET:
                self.advance()
                left_aligned = True
            if axis is Axis.ATTRIBUTE:
                test = NodeTest(self.node_name(), is_attribute=True)
            else:
                test = NodeTest(self.node_name())
        elif implicit_wildcard:
            test = NodeTest(WILDCARD)
        right_aligned = False
        if self.peek().kind == lx.DOLLAR:
            self.advance()
            right_aligned = True
        predicates = []
        while self.peek().kind == lx.LBRACKET:
            self.advance()
            predicates.append(_normalize_positional(self.parse_or()))
            self.expect(lx.RBRACKET)
        return Step(
            axis=axis,
            test=test,
            left_aligned=left_aligned,
            right_aligned=right_aligned,
            predicates=tuple(predicates),
        )

    def node_name(self) -> str:
        token = self.peek()
        if token.kind == lx.NAME:
            self.advance()
            return token.text
        if token.kind == lx.STRING:
            self.advance()
            return token.text
        self.fail(f"expected a node test but found {token.text or 'end of query'!r}")
        raise AssertionError("unreachable")

    # -- predicates -------------------------------------------------------------

    def parse_or(self) -> PredicateExpr:
        parts = [self.parse_and()]
        while self.peek().kind == lx.NAME and self.peek().text == "or":
            self.advance()
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else OrExpr(tuple(parts))

    def parse_and(self) -> PredicateExpr:
        parts = [self.parse_comparison()]
        while self.peek().kind == lx.NAME and self.peek().text == "and":
            self.advance()
            parts.append(self.parse_comparison())
        return parts[0] if len(parts) == 1 else AndExpr(tuple(parts))

    def parse_comparison(self) -> PredicateExpr:
        left = self.parse_value()
        token = self.peek()
        if token.kind == lx.OP and token.text in _COMPARISON_OPS:
            self.advance()
            right = self.parse_value(rhs=True)
            return Comparison(left, token.text, right)
        if (
            token.kind == lx.ARROW
            and token.text == "<="
            and not isinstance(left, PathExists)
        ):
            # position()<=3 — reinterpret the sibling arrow as an operator.
            self.advance()
            right = self.parse_value(rhs=True)
            return Comparison(left, "<=", right)
        return left

    def parse_value(self, rhs: bool = False) -> PredicateExpr:
        token = self.peek()
        if token.kind == lx.NAME and token.text == "not" and self.peek(1).kind == lx.LPAREN:
            self.advance()
            self.advance()
            inner = self.parse_or()
            self.expect(lx.RPAREN)
            return NotExpr(inner)
        if token.kind == lx.LPAREN:
            self.advance()
            inner = self.parse_or()
            self.expect(lx.RPAREN)
            return inner
        if token.kind == lx.STRING:
            self.advance()
            return Literal(token.text)
        if token.kind == lx.NAME and self.peek(1).kind == lx.LPAREN:
            return self.parse_function_call()
        if token.kind == lx.NAME and (rhs or _is_number(token.text)):
            if self.peek(1).kind in _PATH_START_KINDS or self.peek(1).kind == lx.COLONCOLON:
                return PathExists(self.parse_relative_path())
            self.advance()
            if _is_number(token.text):
                return Number(float(token.text))
            return Literal(token.text)
        if token.kind in _PATH_START_KINDS or token.kind in (lx.NAME, lx.STRING, lx.CARET):
            return PathExists(self.parse_relative_path())
        self.fail(f"expected an expression but found {token.text or 'end of query'!r}")
        raise AssertionError("unreachable")

    def parse_function_call(self) -> PredicateExpr:
        name_token = self.advance()
        self.expect(lx.LPAREN)
        args: list[PredicateExpr] = []
        if self.peek().kind != lx.RPAREN:
            args.append(self.parse_or())
            while self.peek().kind == lx.COMMA:
                self.advance()
                args.append(self.parse_or())
        self.expect(lx.RPAREN)
        call = FunctionCall(name_token.text, tuple(args))
        error = validate_call(call)
        if error:
            raise LPathSyntaxError(error, self.query, name_token.position)
        return call


def _is_number(text: str) -> bool:
    return text.isdigit()


#: Functions whose value is numeric; a bare numeric predicate like ``[1]``
#: or ``[last()]`` abbreviates ``[position() = <expr>]`` (XPath 1.0 §2.4).
_NUMERIC_FUNCTIONS = frozenset({"position", "last", "count"})


def _normalize_positional(expr: PredicateExpr) -> PredicateExpr:
    if isinstance(expr, Number) or (
        isinstance(expr, FunctionCall) and expr.name in _NUMERIC_FUNCTIONS
    ):
        return Comparison(FunctionCall("position"), "=", expr)
    return expr


def parse(query: str) -> Path:
    """Parse an absolute LPath query into a :class:`Path`."""
    return _Parser(query).parse_query()


def parse_relative(query: str) -> Path:
    """Parse a relative path (as found inside predicates)."""
    parser = _Parser(query)
    path = parser.parse_relative_path()
    if parser.peek().kind != lx.EOF:
        parser.fail(f"unexpected trailing {parser.peek().text!r}")
    return path
