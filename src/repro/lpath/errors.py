"""Exceptions raised by the LPath language implementation."""

from __future__ import annotations


class LPathError(Exception):
    """Base class for all LPath errors.

    ``transient`` classifies the failure for retry policies: ``True``
    means the query did not produce (and can never have produced) a
    wrong answer — the same request is safe to retry and may well
    succeed.  Parse/compile/evaluation errors are permanent: retrying
    the identical query re-raises the identical error."""

    transient = False


class LPathSyntaxError(LPathError):
    """A query failed to tokenize or parse."""

    def __init__(self, message: str, query: str, position: int) -> None:
        pointer = " " * position + "^"
        super().__init__(f"{message}\n  {query}\n  {pointer}")
        self.query = query
        self.position = position


class LPathCompileError(LPathError):
    """A parsed query cannot be compiled for the selected backend."""


class LPathEvaluationError(LPathError):
    """A query failed during evaluation."""


class ExecutorRecoveryError(LPathError):
    """Segment fan-out kept failing after bounded recovery attempts.

    Raised only when the process pool broke repeatedly *and* in-process
    degradation is disabled — the caller saw no partial results, so the
    query is safe to retry once the workers are healthy again."""

    transient = True
