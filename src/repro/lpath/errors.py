"""Exceptions raised by the LPath language implementation."""

from __future__ import annotations


class LPathError(Exception):
    """Base class for all LPath errors."""


class LPathSyntaxError(LPathError):
    """A query failed to tokenize or parse."""

    def __init__(self, message: str, query: str, position: int) -> None:
        pointer = " " * position + "^"
        super().__init__(f"{message}\n  {query}\n  {pointer}")
        self.query = query
        self.position = position


class LPathCompileError(LPathError):
    """A parsed query cannot be compiled for the selected backend."""


class LPathEvaluationError(LPathError):
    """A query failed during evaluation."""
