"""Direct (tree-walking) evaluation of LPath queries.

This evaluator defines the reference semantics of the language: it walks
:class:`~repro.tree.Tree` objects using their Definition 4.1 spans, with no
relational machinery.  The relational and SQLite backends are differential-
tested against it.  It also implements the full XPath positional semantics
(``position()``/``last()`` with reverse-axis ordering), which the SQL
backends only support in restricted forms.

Semantic decisions (shared with the compiler, documented in DESIGN.md):

* the scope node of ``{...}`` is the node matched just before the brace (or
  the predicate's context node); every step inside, including steps in
  nested predicates, stays within the scope subtree;
* edge alignment without an explicit scope aligns to the tree root;
* attribute steps select attribute "rows"; their identity for result
  purposes is the owning element's ``(tid, id)``, as in the label relation.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..tree.node import Tree, TreeNode
from .ast import (
    AndExpr,
    Comparison,
    FunctionCall,
    Literal,
    NotExpr,
    Number,
    OrExpr,
    Path,
    PathExists,
    PredicateExpr,
    Scope,
    Step,
)
from .axes import Axis, REVERSE_AXES
from .errors import LPathEvaluationError
from .parser import parse


class AttributeItem:
    """A selected attribute: the element plus the attribute name."""

    __slots__ = ("node", "name")

    def __init__(self, node: TreeNode, name: str) -> None:
        self.node = node
        self.name = name

    @property
    def value(self) -> str:
        return self.node.attributes[self.name]


Item = Union[TreeNode, AttributeItem]


def _element(item: Item) -> TreeNode:
    return item.node if isinstance(item, AttributeItem) else item


def string_value(item: Item) -> str:
    """XPath-style string value: attribute value, or the element's words."""
    if isinstance(item, AttributeItem):
        return item.value
    return " ".join(
        leaf.word for leaf in item.leaves() if leaf.word is not None
    )


class TreeWalkEvaluator:
    """Evaluate LPath queries by walking trees directly."""

    def __init__(self, trees: Sequence[Tree]) -> None:
        self.trees = list(trees)

    # -- public API -----------------------------------------------------------

    def query(self, query: Union[str, Path]) -> list[tuple[int, int]]:
        """Distinct ``(tid, id)`` pairs of matched nodes, sorted."""
        return sorted({(tree.tid, _element(item).node_id)
                       for tree, item in self._matches(query)})

    def nodes(self, query: Union[str, Path]) -> list[TreeNode]:
        """Matched element nodes (distinct, document order within tree order)."""
        seen: set[tuple[int, int]] = set()
        result: list[TreeNode] = []
        pairs: list[tuple[int, TreeNode]] = []
        for tree, item in self._matches(query):
            node = _element(item)
            key = (tree.tid, node.node_id)
            if key not in seen:
                seen.add(key)
                pairs.append((tree.tid, node))
        pairs.sort(key=lambda pair: (pair[0], pair[1].node_id))
        for _, node in pairs:
            result.append(node)
        return result

    def count(self, query: Union[str, Path]) -> int:
        """Size of the distinct result set (what the paper's experiments report)."""
        return len(self.query(query))

    # -- evaluation -------------------------------------------------------------

    def _matches(self, query: Union[str, Path]) -> Iterable[tuple[Tree, Item]]:
        path = parse(query) if isinstance(query, str) else query
        for tree in self.trees:
            for item in self._eval_path_from_document(tree, path):
                yield tree, item

    def _eval_path_from_document(self, tree: Tree, path: Path) -> list[Item]:
        items = list(path.items)
        if not items:
            return []
        first = items[0]
        if isinstance(first, Scope):
            raise LPathEvaluationError("an absolute query cannot start with a scope")
        context = self._document_step(tree, first)
        return self._eval_items(tree, items[1:], context, scope=None)

    def _document_step(self, tree: Tree, step: Step) -> list[Item]:
        if step.axis is Axis.DESCENDANT:
            candidates: list[TreeNode] = tree.nodes
        elif step.axis is Axis.CHILD:
            candidates = [tree.root]
        else:
            raise LPathEvaluationError(
                f"a query cannot start with the {step.axis.value} axis"
            )
        return self._filter_step(tree, step, candidates, scope=None, context=None)

    def _eval_items(
        self,
        tree: Tree,
        items: Sequence,
        context: list[Item],
        scope: Optional[TreeNode],
    ) -> list[Item]:
        if not items:
            return context
        head, rest = items[0], items[1:]
        if isinstance(head, Scope):
            if rest:
                raise LPathEvaluationError("steps after a scope are not allowed")
            results: list[Item] = []
            for item in context:
                node = _element(item)
                results.extend(
                    self._eval_items(tree, list(head.body.items), [node], scope=node)
                )
            return results
        results = []
        for item in context:
            results.extend(self._eval_step(tree, head, _element(item), scope))
        return self._eval_items(tree, rest, results, scope)

    # -- single steps -------------------------------------------------------------

    def _eval_step(
        self, tree: Tree, step: Step, context: TreeNode, scope: Optional[TreeNode]
    ) -> list[Item]:
        if step.axis is Axis.ATTRIBUTE:
            candidates = self._attribute_candidates(step, context)
            return self._apply_predicates(tree, step, candidates, scope)
        candidates = self._axis_candidates(tree, step.axis, context)
        return self._filter_step(tree, step, candidates, scope, context)

    def _filter_step(
        self,
        tree: Tree,
        step: Step,
        candidates: Iterable[TreeNode],
        scope: Optional[TreeNode],
        context: Optional[TreeNode],
    ) -> list[Item]:
        kept: list[TreeNode] = []
        scope_left = scope.left if scope is not None else tree.root.left
        scope_right = scope.right if scope is not None else tree.root.right
        for node in candidates:
            if scope is not None and not (
                scope.left <= node.left
                and node.right <= scope.right
                and node.depth >= scope.depth
            ):
                continue
            if not step.test.is_wildcard and node.label != step.test.name:
                continue
            if step.left_aligned and node.left != scope_left:
                continue
            if step.right_aligned and node.right != scope_right:
                continue
            kept.append(node)
        if step.axis in REVERSE_AXES:
            kept.sort(key=lambda node: node.node_id, reverse=True)
        return self._apply_predicates(tree, step, kept, scope)

    def _axis_candidates(
        self, tree: Tree, axis: Axis, c: TreeNode
    ) -> list[TreeNode]:
        if axis is Axis.CHILD:
            return list(c.children)
        if axis is Axis.PARENT:
            return [c.parent] if c.parent is not None else []
        if axis is Axis.DESCENDANT:
            return list(c.descendants())
        if axis is Axis.DESCENDANT_OR_SELF:
            return list(c.preorder())
        if axis is Axis.ANCESTOR:
            return list(c.ancestors())
        if axis is Axis.ANCESTOR_OR_SELF:
            return [c, *c.ancestors()]
        if axis is Axis.SELF:
            return [c]
        nodes = tree.nodes
        if axis is Axis.IMMEDIATE_FOLLOWING:
            return [x for x in nodes if x.left == c.right]
        if axis is Axis.FOLLOWING:
            return [x for x in nodes if x.left >= c.right]
        if axis is Axis.FOLLOWING_OR_SELF:
            return [x for x in nodes if x.left >= c.right or x is c]
        if axis is Axis.IMMEDIATE_PRECEDING:
            return [x for x in nodes if x.right == c.left]
        if axis is Axis.PRECEDING:
            return [x for x in nodes if x.right <= c.left]
        if axis is Axis.PRECEDING_OR_SELF:
            return [x for x in nodes if x.right <= c.left or x is c]
        parent = c.parent
        if parent is None:
            siblings = [c]
        else:
            siblings = parent.children
        if axis is Axis.IMMEDIATE_FOLLOWING_SIBLING:
            return [x for x in siblings if x.left == c.right]
        if axis is Axis.FOLLOWING_SIBLING:
            return [x for x in siblings if x.left >= c.right]
        if axis is Axis.FOLLOWING_SIBLING_OR_SELF:
            return [x for x in siblings if x.left >= c.right or x is c]
        if axis is Axis.IMMEDIATE_PRECEDING_SIBLING:
            return [x for x in siblings if x.right == c.left]
        if axis is Axis.PRECEDING_SIBLING:
            return [x for x in siblings if x.right <= c.left]
        if axis is Axis.PRECEDING_SIBLING_OR_SELF:
            return [x for x in siblings if x.right <= c.left or x is c]
        raise LPathEvaluationError(f"unsupported axis {axis.value}")

    def _attribute_candidates(self, step: Step, context: TreeNode) -> list[Item]:
        name = step.test.name
        if name == "_":
            return [AttributeItem(context, attr) for attr in sorted(context.attributes)]
        if name in context.attributes:
            return [AttributeItem(context, name)]
        return []

    # -- predicates ------------------------------------------------------------------

    def _apply_predicates(
        self,
        tree: Tree,
        step: Step,
        items: list[Item],
        scope: Optional[TreeNode],
    ) -> list[Item]:
        current = items
        for predicate in step.predicates:
            size = len(current)
            current = [
                item
                for position, item in enumerate(current, start=1)
                if self._truth(
                    tree, predicate, item, scope, position=position, size=size
                )
            ]
        return current

    def _truth(
        self,
        tree: Tree,
        expr: PredicateExpr,
        item: Item,
        scope: Optional[TreeNode],
        position: int,
        size: int,
    ) -> bool:
        if isinstance(expr, OrExpr):
            return any(
                self._truth(tree, part, item, scope, position, size)
                for part in expr.parts
            )
        if isinstance(expr, AndExpr):
            return all(
                self._truth(tree, part, item, scope, position, size)
                for part in expr.parts
            )
        if isinstance(expr, NotExpr):
            return not self._truth(tree, expr.part, item, scope, position, size)
        if isinstance(expr, PathExists):
            return bool(self._eval_relative(tree, expr.path, item, scope))
        if isinstance(expr, Comparison):
            return self._compare(tree, expr, item, scope, position, size)
        if isinstance(expr, FunctionCall):
            value = self._call(tree, expr, item, scope, position, size)
            return bool(value)
        if isinstance(expr, (Literal, Number)):
            return bool(
                expr.value if isinstance(expr, Literal) else expr.value
            )
        raise LPathEvaluationError(f"cannot evaluate {type(expr).__name__}")

    def _eval_relative(
        self, tree: Tree, path: Path, item: Item, scope: Optional[TreeNode]
    ) -> list[Item]:
        node = _element(item)
        return self._eval_items(tree, list(path.items), [node], scope)

    def _call(
        self,
        tree: Tree,
        call: FunctionCall,
        item: Item,
        scope: Optional[TreeNode],
        position: int,
        size: int,
    ):
        if call.name == "position":
            return position
        if call.name == "last":
            return size
        if call.name == "count":
            argument = call.args[0]
            if not isinstance(argument, PathExists):
                raise LPathEvaluationError("count() takes a path argument")
            return len(
                {
                    (tree.tid, _element(found).node_id, getattr(found, "name", None))
                    for found in self._eval_relative(tree, argument.path, item, scope)
                }
            )
        if call.name == "name":
            return _element(item).label
        if call.name == "true":
            return True
        if call.name == "false":
            return False
        raise LPathEvaluationError(f"unknown function {call.name!r}")

    def _compare(
        self,
        tree: Tree,
        expr: Comparison,
        item: Item,
        scope: Optional[TreeNode],
        position: int,
        size: int,
    ) -> bool:
        left = self._value_of(tree, expr.left, item, scope, position, size)
        right = self._value_of(tree, expr.right, item, scope, position, size)
        return _compare_values(left, right, expr.op)

    def _value_of(
        self,
        tree: Tree,
        expr: PredicateExpr,
        item: Item,
        scope: Optional[TreeNode],
        position: int,
        size: int,
    ):
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, FunctionCall):
            return self._call(tree, expr, item, scope, position, size)
        if isinstance(expr, PathExists):
            return [
                string_value(found)
                for found in self._eval_relative(tree, expr.path, item, scope)
            ]
        raise LPathEvaluationError(
            f"cannot use {type(expr).__name__} as a comparison operand"
        )


def _compare_values(left, right, op: str) -> bool:
    """XPath 1.0 comparison semantics for the value kinds we produce."""
    if isinstance(left, list) and isinstance(right, list):
        return any(_compare_scalars(a, b, op) for a in left for b in right)
    if isinstance(left, list):
        return any(_compare_scalars(a, right, op) for a in left)
    if isinstance(right, list):
        return any(_compare_scalars(left, b, op) for b in right)
    return _compare_scalars(left, right, op)


def _compare_scalars(left, right, op: str) -> bool:
    if op in ("<", "<=", ">", ">="):
        left_num, right_num = _to_number(left), _to_number(right)
        if left_num is None or right_num is None:
            return False
        if op == "<":
            return left_num < right_num
        if op == "<=":
            return left_num <= right_num
        if op == ">":
            return left_num > right_num
        return left_num >= right_num
    if isinstance(left, (int, float)) or isinstance(right, (int, float)):
        left_num, right_num = _to_number(left), _to_number(right)
        if left_num is None or right_num is None:
            equal = False
        else:
            equal = left_num == right_num
    else:
        equal = str(left) == str(right)
    return equal if op == "=" else not equal


def _to_number(value) -> Optional[float]:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value).strip())
    except ValueError:
        return None
