"""The LPath query engine: load a corpus, answer LPath queries.

Three backends share one parser and one axis semantics:

* ``"plan"`` (default) — the Section 4 engine: Definition 4.1 labels
  compiled through the shared logical IR (:mod:`repro.plan`), optimized,
  then run by one of two physical executors: the tuple-at-a-time Volcano
  interpreter (``executor="volcano"``, the default) or the batch columnar
  executor over parallel arrays (``executor="columnar"``,
  :mod:`repro.columnar`);
* ``"sqlite"`` — the same labels in SQLite, executing the *emitted SQL text*
  (:mod:`repro.lpath.sql`); a differential oracle for the translation;
* ``"treewalk"`` — direct tree walking (:mod:`repro.lpath.treewalk`); the
  reference semantics.

Compiled plans are kept in an LRU :class:`~repro.plan.cache.PlanCache`
keyed on the unparsed query text plus the compile options (pivot flag and
executor choice), so repeated queries (the benchmark hot path) skip
parsing, lowering and optimization.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..labeling.lpath_scheme import label_corpus, root_spans
from ..plan.cache import PlanCache, cached_compile
from ..relational.database import Database, create_node_table
from ..relational.sqlite_backend import SQLiteBackend
from ..tree.node import Tree, TreeNode
from .ast import Path
from .compiler import CompiledQuery, EXECUTORS, PlanCompiler
from .errors import LPathError
from .parser import parse
from .sql import SQLGenerator
from .treewalk import TreeWalkEvaluator

Query = Union[str, Path]
BACKENDS = ("plan", "sqlite", "treewalk")


class LPathEngine:
    """Query a corpus of linguistic trees with LPath."""

    def __init__(
        self,
        trees: Sequence[Tree],
        extra_indexes: bool = False,
        keep_trees: bool = True,
        plan_cache_size: int = 128,
        executor: str = "volcano",
    ) -> None:
        self.trees = list(trees)
        tids = [tree.tid for tree in self.trees]
        if len(set(tids)) != len(tids):
            raise LPathError("trees must have distinct tids")
        rows = list(label_corpus(self.trees))
        root_right = {tree.tid: tree.root.right for tree in self.trees}
        self._init_from_rows(rows, root_right, extra_indexes, plan_cache_size, executor)
        self._treewalk = TreeWalkEvaluator(self.trees) if keep_trees else None
        self._by_id = (
            {tree.tid: tree for tree in self.trees} if keep_trees else None
        )

    @classmethod
    def from_labels(
        cls,
        rows: Sequence,
        extra_indexes: bool = False,
        plan_cache_size: int = 128,
        executor: str = "volcano",
    ) -> "LPathEngine":
        """Build an engine straight from label rows (e.g. a compiled corpus
        loaded with :mod:`repro.store`).  Tree-dependent features
        (:meth:`nodes`, the tree-walk backend) are unavailable."""
        engine = cls.__new__(cls)
        engine.trees = []
        rows = list(rows)
        engine._init_from_rows(
            rows, root_spans(rows), extra_indexes, plan_cache_size, executor
        )
        engine._treewalk = None
        engine._by_id = None
        return engine

    @classmethod
    def from_columns(cls, columns, plan_cache_size: int = 128) -> "LPathEngine":
        """Build a columnar-only engine from a column bundle (e.g.
        :func:`repro.store.load_corpus_columns`) without ever materializing
        per-row tuples.  Only ``backend="plan"`` with the columnar executor
        is available — no row table, no SQLite oracle, no trees."""
        from ..columnar import ColumnStore

        store = columns if isinstance(columns, ColumnStore) else ColumnStore.from_columns(columns)
        engine = cls.__new__(cls)
        engine.trees = []
        engine.executor = "columnar"
        engine.database = None
        engine.node_table = None
        engine.root_right = store.root_right
        engine._compiler = PlanCompiler(column_store=store, root_right=store.root_right)
        engine._sql = SQLGenerator()
        engine._rows = None
        engine._sqlite = None
        engine._treewalk = None
        engine._by_id = None
        engine.plan_cache = PlanCache(plan_cache_size)
        return engine

    def _init_from_rows(
        self, rows, root_right, extra_indexes: bool, plan_cache_size: int,
        executor: str = "volcano",
    ) -> None:
        if executor not in EXECUTORS:
            raise LPathError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        self.executor = executor
        self.database = Database("lpath")
        self.node_table = create_node_table(
            self.database, rows, extra_indexes=extra_indexes
        )
        self.root_right = root_right
        self._compiler = PlanCompiler(self.node_table, self.root_right)
        if executor == "columnar":
            # The engine's default executor gets its physical structures at
            # load time (the row table is always built eagerly above).
            self._compiler.columnar_runtime
        self._sql = SQLGenerator()
        self._rows = rows
        self._sqlite: Optional[SQLiteBackend] = None
        self.plan_cache = PlanCache(plan_cache_size)

    # -- queries ------------------------------------------------------------

    def query(
        self,
        query: Query,
        backend: str = "plan",
        pivot: bool = False,
        executor: Optional[str] = None,
    ) -> list[tuple[int, int]]:
        """Distinct, sorted ``(tid, id)`` pairs matching the query.

        ``pivot=True`` (plan backend only, ignored elsewhere) enables
        selectivity-driven join ordering; ``executor`` overrides the
        engine's physical executor for this query (plan backend only)."""
        if backend == "plan":
            return [
                tuple(row)
                for row in self.compile(query, pivot=pivot, executor=executor).rows()
            ]
        if backend == "sqlite":
            sql = self.to_sql(query)
            return sorted(tuple(row) for row in self.sqlite.execute(sql))
        if backend == "treewalk":
            return self.treewalk.query(query)
        raise LPathError(f"unknown backend {backend!r}; choose from {BACKENDS}")

    def count(
        self,
        query: Query,
        backend: str = "plan",
        pivot: bool = False,
        executor: Optional[str] = None,
    ) -> int:
        """Result-set size (what the paper's experiments report)."""
        return len(self.query(query, backend=backend, pivot=pivot, executor=executor))

    def nodes(
        self, query: Query, pivot: bool = False, executor: Optional[str] = None
    ) -> list[TreeNode]:
        """Matched tree nodes (needs ``keep_trees=True``)."""
        if self._by_id is None:
            raise LPathError("engine was built with keep_trees=False")
        result = []
        for tid, node_id in self.query(query, pivot=pivot, executor=executor):
            result.append(self._by_id[tid].node_by_id(node_id))
        return result

    # -- compilation artifacts -------------------------------------------------

    def compile(
        self, query: Query, pivot: bool = False, executor: Optional[str] = None
    ) -> CompiledQuery:
        """Compile to a shared-IR plan, via the per-engine plan cache."""
        return cached_compile(
            self.plan_cache,
            self._compiler,
            query,
            pivot,
            executor=executor if executor is not None else self.executor,
        )

    def to_sql(self, query: Query) -> str:
        """The SQL text the paper's translation module would emit."""
        path = parse(query) if isinstance(query, str) else query
        return self._sql.generate(path)

    def explain(
        self, query: Query, pivot: bool = False, executor: Optional[str] = None
    ) -> str:
        """Logical-IR and physical plan description."""
        return self.compile(query, pivot=pivot, executor=executor).explain()

    # -- backends ---------------------------------------------------------------

    @property
    def sqlite(self) -> SQLiteBackend:
        """The lazily created SQLite differential backend."""
        if self._sqlite is None:
            if self._rows is None:
                raise LPathError(
                    "columnar-only engine has no row storage for SQLite"
                )
            self._sqlite = SQLiteBackend(self._rows)
        return self._sqlite

    @property
    def treewalk(self) -> TreeWalkEvaluator:
        """The tree-walking reference evaluator."""
        if self._treewalk is None:
            raise LPathError("engine was built with keep_trees=False")
        return self._treewalk

    def close(self) -> None:
        """Release backend resources and drop cached plans."""
        if self._sqlite is not None:
            self._sqlite.close()
            self._sqlite = None
        self.plan_cache.clear()

    def __enter__(self) -> "LPathEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def engine_from_bracketed(text: str, **kwargs) -> LPathEngine:
    """Convenience: build an engine straight from bracketed trees."""
    from ..tree.bracket import iter_trees

    return LPathEngine(list(iter_trees(text)), **kwargs)
