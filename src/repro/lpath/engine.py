"""The LPath query engine: load a corpus, answer LPath queries.

Three backends share one parser and one axis semantics:

* ``"plan"`` (default) — the Section 4 engine: Definition 4.1 labels
  compiled through the shared logical IR (:mod:`repro.plan`), optimized,
  then run by one of two physical executors: the tuple-at-a-time Volcano
  interpreter (``executor="volcano"``, the default) or the batch columnar
  executor over parallel arrays (``executor="columnar"``,
  :mod:`repro.columnar`);
* ``"sqlite"`` — the same labels in SQLite, executing the *emitted SQL text*
  (:mod:`repro.lpath.sql`); a differential oracle for the translation;
* ``"treewalk"`` — direct tree walking (:mod:`repro.lpath.treewalk`); the
  reference semantics.

``segments > 1`` shards the corpus by tree into independent physical
stores (:mod:`repro.plan.segmented`): queries compile once, run against
every shard (optionally on a ``workers``-sized thread pool) and merge the
sorted per-shard results — identical output, embarrassingly parallel
execution.  The sqlite and treewalk oracles always see the whole corpus.

Compiled plans are kept in an LRU :class:`~repro.plan.cache.PlanCache`
keyed on the unparsed query text plus the compile options (pivot flag and
executor choice), so repeated queries (the benchmark hot path) skip
parsing, lowering and optimization.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..labeling.lpath_scheme import label_corpus, root_spans
from ..plan.cache import PlanCache, cached_compile
from ..plan.segmented import (
    RemoteSpec,
    Segment,
    SegmentPool,
    SegmentedPlanCompiler,
    validate_segmentation,
)
from ..relational.database import Database, create_node_table
from ..relational.sqlite_backend import SQLiteBackend
from ..store import partition_columns, partition_rows_by_tid
from ..tree.node import Tree, TreeNode
from .ast import Path
from .compiler import CompiledQuery, EXECUTORS, PlanCompiler
from .errors import LPathError
from .parser import parse
from .sql import SQLGenerator
from .treewalk import TreeWalkEvaluator

Query = Union[str, Path]
BACKENDS = ("plan", "sqlite", "treewalk")

#: The attribute surface an object must expose to count as a column bundle
#: (:class:`repro.store.LabelColumns` or anything shaped like it).
COLUMN_BUNDLE_ATTRS = (
    "tid", "left", "right", "depth", "id", "pid", "names", "values",
)


class LPathEngine:
    """Query a corpus of linguistic trees with LPath."""

    def __init__(
        self,
        trees: Sequence[Tree],
        extra_indexes: bool = False,
        keep_trees: bool = True,
        plan_cache_size: int = 128,
        executor: str = "volcano",
        segments: int = 1,
        workers: Optional[int] = None,
    ) -> None:
        self.trees = list(trees)
        tids = [tree.tid for tree in self.trees]
        if len(set(tids)) != len(tids):
            raise LPathError("trees must have distinct tids")
        rows = list(label_corpus(self.trees))
        root_right = {tree.tid: tree.root.right for tree in self.trees}
        self._init_from_rows(
            rows, root_right, extra_indexes, plan_cache_size, executor,
            segments=segments, workers=workers,
        )
        self._treewalk = TreeWalkEvaluator(self.trees) if keep_trees else None
        self._by_id = (
            {tree.tid: tree for tree in self.trees} if keep_trees else None
        )

    @classmethod
    def from_labels(
        cls,
        rows: Sequence,
        extra_indexes: bool = False,
        plan_cache_size: int = 128,
        executor: str = "volcano",
        segments: int = 1,
        workers: Optional[int] = None,
    ) -> "LPathEngine":
        """Build an engine straight from label rows (e.g. a compiled corpus
        loaded with :mod:`repro.store`).  Tree-dependent features
        (:meth:`nodes`, the tree-walk backend) are unavailable."""
        engine = cls.__new__(cls)
        engine.trees = []
        rows = list(rows)
        engine._init_from_rows(
            rows, root_spans(rows), extra_indexes, plan_cache_size, executor,
            segments=segments, workers=workers,
        )
        engine._treewalk = None
        engine._by_id = None
        return engine

    @classmethod
    def from_columns(
        cls,
        columns,
        plan_cache_size: int = 128,
        executor: str = "columnar",
        segments: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> "LPathEngine":
        """Build a columnar-only engine from one column bundle (e.g.
        :func:`repro.store.load_corpus_columns`) or a *list* of per-segment
        bundles (:func:`repro.store.load_corpus_segments`) without ever
        materializing per-row tuples.  Only ``backend="plan"`` with the
        columnar executor is available — no row table, no SQLite oracle,
        no trees.

        ``segments=N`` re-shards a single bundle by tree; a bundle list is
        already sharded and adopts one store per element.  ``workers``
        sizes the thread pool the per-segment plans fan out on."""
        from ..columnar import ColumnStore

        if executor not in EXECUTORS:
            raise LPathError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        if executor != "columnar":
            raise LPathError(
                "from_columns builds a columnar-only engine (no row table); "
                "executor='volcano' needs row storage — build the engine "
                "with from_labels or from trees instead"
            )
        bundles = cls._as_bundle_list(columns, segments)
        validate_segmentation(len(bundles), workers)
        stores = [
            bundle if isinstance(bundle, ColumnStore)
            else ColumnStore.from_columns(bundle)
            for bundle in bundles
        ]
        engine = cls.__new__(cls)
        engine.trees = []
        engine.executor = "columnar"
        engine.segments = len(stores)
        engine.workers = workers
        engine.mode = "thread"
        engine._mapped = None
        engine._pool = SegmentPool(workers, len(stores))
        engine.database = None
        engine.node_table = None
        engine.root_right = {}
        for store in stores:
            engine.root_right.update(store.root_right)
        if len(stores) == 1:
            engine._compiler = PlanCompiler(
                column_store=stores[0], root_right=stores[0].root_right
            )
        else:
            engine._compiler = SegmentedPlanCompiler(
                [
                    Segment(
                        index,
                        PlanCompiler(
                            column_store=store, root_right=store.root_right
                        ),
                        len(store),
                    )
                    for index, store in enumerate(stores)
                ],
                get_pool=engine._pool,
            )
        engine._sql = SQLGenerator()
        engine._rows = None
        engine._sqlite = None
        engine._treewalk = None
        engine._by_id = None
        engine.plan_cache = PlanCache(plan_cache_size)
        return engine

    @classmethod
    def from_store_mmap(
        cls,
        path: str,
        plan_cache_size: int = 128,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> "LPathEngine":
        """Open an ``LPDB0004`` compiled corpus zero-copy.

        The file is ``mmap``\\ ed and every segment's columns, projections,
        bitmaps, partition bounds and collected statistics are adopted as
        views straight off the map — open cost is O(segments + names),
        not O(rows), and two engines (or processes) opening the same file
        share its pages through the OS cache.  Columnar-only, like
        :meth:`from_columns`.

        ``mode`` picks the fan-out pool: ``"thread"`` or ``"process"``
        (default: process whenever ``workers > 1``, because this engine
        is exactly the shape process workers need — they re-open the
        store by ``(path, segment)`` instead of unpickling it).
        :meth:`close` unmaps the file, invalidating every adopted view."""
        from ..columnar.store import MappedColumnStore
        from ..store import open_mapped_corpus

        validate_segmentation(1, workers, mode)
        if mode is None:
            mode = "process" if workers is not None and workers > 1 else "thread"
        corpus = open_mapped_corpus(path)
        try:
            stores = [
                MappedColumnStore(segment) for segment in corpus.segments
            ]
            engine = cls.from_columns(
                stores if len(stores) > 1 else stores[0],
                plan_cache_size=plan_cache_size,
                workers=workers,
            )
        except BaseException:
            corpus.close()
            raise
        engine._mapped = corpus
        engine.mode = mode
        engine._pool = SegmentPool(workers, len(stores), mode=mode)
        if len(stores) > 1:
            # Re-point the already-built segmented compiler at the
            # mode-aware pool and teach it how workers re-open the store.
            engine._compiler.get_pool = engine._pool
            engine._compiler.remote = RemoteSpec(path, "LPath")
        return engine

    @classmethod
    def open(
        cls,
        path: str,
        plan_cache_size: int = 128,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> "LPathEngine":
        """Open any compiled corpus file as a columnar engine.

        ``LPDB0004`` files are adopted zero-copy via
        :meth:`from_store_mmap`; ``LPDB0005`` live directories open as a
        snapshot over mmap'd base segments plus the WAL replayed into an
        in-memory delta store (:func:`repro.live.open_live_engine`);
        older revisions are decoded eagerly (``mode="process"``
        therefore requires an ``LPDB0004`` file — worker processes
        re-open the store by path)."""
        import os as _os

        from .. import store as store_module

        if _os.path.isdir(path):
            from ..live import open_live_engine

            return open_live_engine(
                path, plan_cache_size=plan_cache_size,
                workers=workers, mode=mode,
            )
        if store_module.corpus_format(path) == "LPDB0004":
            return cls.from_store_mmap(
                path, plan_cache_size=plan_cache_size,
                workers=workers, mode=mode,
            )
        if mode == "process":
            raise LPathError(
                "process-mode fan-out needs an LPDB0004 store (re-save the "
                f"corpus with format='lpdb0004'); {path} is "
                f"{store_module.corpus_format(path)}"
            )
        shards = store_module.load_corpus_segments(path)
        return cls.from_columns(
            shards if len(shards) > 1 else shards[0],
            plan_cache_size=plan_cache_size,
            workers=workers,
        )

    @staticmethod
    def _as_bundle_list(columns, segments: Optional[int]) -> list:
        """Normalize ``from_columns`` input to a list of validated column
        bundles, applying an optional re-shard."""
        from ..columnar import ColumnStore

        def check(bundle):
            if isinstance(bundle, ColumnStore):
                return bundle
            missing = [
                attr for attr in COLUMN_BUNDLE_ATTRS
                if not hasattr(bundle, attr)
            ]
            if missing:
                raise LPathError(
                    "from_columns expected a column bundle with the "
                    f"{'/'.join(COLUMN_BUNDLE_ATTRS)} columns "
                    f"(e.g. repro.store.LabelColumns); {type(bundle).__name__!r} "
                    f"is missing {', '.join(missing)}"
                )
            lengths = {
                attr: len(getattr(bundle, attr)) for attr in COLUMN_BUNDLE_ATTRS
            }
            if len(set(lengths.values())) > 1:
                raise LPathError(
                    f"ragged column bundle: column lengths differ ({lengths})"
                )
            return bundle

        if isinstance(columns, (list, tuple)):
            if not columns:
                raise LPathError("from_columns needs at least one bundle")
            bundles = [check(bundle) for bundle in columns]
            if segments is not None and segments != len(bundles):
                raise LPathError(
                    f"segments={segments} conflicts with a list of "
                    f"{len(bundles)} pre-sharded bundles"
                )
            return bundles
        bundle = check(columns)
        if segments is None or segments == 1:
            return [bundle]
        if isinstance(bundle, ColumnStore):
            raise LPathError(
                "cannot re-shard an already built ColumnStore; pass the raw "
                "LabelColumns (or a list of per-segment bundles) instead"
            )
        return partition_columns(bundle, segments)

    def _init_from_rows(
        self, rows, root_right, extra_indexes: bool, plan_cache_size: int,
        executor: str = "volcano", segments: int = 1,
        workers: Optional[int] = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise LPathError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        validate_segmentation(segments, workers)
        self.executor = executor
        self.segments = segments
        self.workers = workers
        self.mode = "thread"
        self._mapped = None
        self._pool = SegmentPool(workers, segments)
        self.root_right = root_right
        if segments == 1:
            self.database = Database("lpath")
            self.node_table = create_node_table(
                self.database, rows, extra_indexes=extra_indexes
            )
            self._compiler = PlanCompiler(self.node_table, self.root_right)
            compilers = [self._compiler]
        else:
            # One relational store per shard; the monolithic table
            # attributes stay None so misuse fails loudly.
            self.database = None
            self.node_table = None
            parts = []
            for index, shard in enumerate(partition_rows_by_tid(rows, segments)):
                database = Database(f"lpath-seg{index}")
                table = create_node_table(
                    database, shard, extra_indexes=extra_indexes
                )
                shard_tids = {row[0] for row in shard}
                shard_root_right = {
                    tid: right for tid, right in root_right.items()
                    if tid in shard_tids
                }
                parts.append(
                    Segment(
                        index,
                        PlanCompiler(table, shard_root_right),
                        len(shard),
                    )
                )
            self._compiler = SegmentedPlanCompiler(parts, get_pool=self._pool)
            compilers = [segment.compiler for segment in parts]
        if executor == "columnar":
            # The engine's default executor gets its physical structures at
            # load time (the row tables are always built eagerly above).
            for compiler in compilers:
                compiler.columnar_runtime
        self._sql = SQLGenerator()
        self._rows = rows
        self._sqlite: Optional[SQLiteBackend] = None
        self.plan_cache = PlanCache(plan_cache_size)

    # -- queries ------------------------------------------------------------

    def query(
        self,
        query: Query,
        backend: str = "plan",
        pivot: bool = False,
        executor: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[int, int]]:
        """Distinct, sorted ``(tid, id)`` pairs matching the query.

        ``pivot=True`` (plan backend only, ignored elsewhere) enables
        selectivity-driven join ordering; ``executor`` overrides the
        engine's physical executor for this query (plan backend only).
        ``limit=k`` keeps the first k pairs in sorted order — the plan
        backend compiles a top-k plan that terminates early instead of
        truncating; the oracle backends truncate, so differential runs
        stay comparable."""
        if self._compiler is None:
            raise LPathError("engine is closed")
        if backend == "plan":
            compiled = self.compile(
                query, pivot=pivot, executor=executor, limit=limit
            )
            return [tuple(row) for row in compiled.rows()]
        if backend == "sqlite":
            sql = self.to_sql(query)
            result = sorted(tuple(row) for row in self.sqlite.execute(sql))
        elif backend == "treewalk":
            result = self.treewalk.query(query)
        else:
            raise LPathError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        return result[:limit] if limit is not None else result

    def count(
        self,
        query: Query,
        backend: str = "plan",
        pivot: bool = False,
        executor: Optional[str] = None,
    ) -> int:
        """Result-set size (what the paper's experiments report).

        The plan backend counts through the compiled plan itself, so a
        segmented engine adds per-segment counts — and a process-mode
        engine ships back one integer per worker instead of packing,
        unpacking and merging every result row just to take its length."""
        if backend == "plan":
            return self.compile(query, pivot=pivot, executor=executor).count()
        return len(self.query(query, backend=backend, pivot=pivot, executor=executor))

    def aggregate(
        self,
        query: Query,
        agg: str = "count",
        pivot: bool = False,
        executor: Optional[str] = None,
    ) -> dict:
        """Evaluate an aggregate over the result set without returning
        rows: ``{"count": n}``, or ``{group: n}`` keyed by node name
        (``count_by_name``) / depth (``count_by_depth``).  The plan
        counts from partition bounds and join output cardinality instead
        of materializing node lists."""
        return self.compile(
            query, pivot=pivot, executor=executor, agg=agg
        ).aggregate()

    def query_batch(
        self,
        queries: Sequence,
        pivot: bool = False,
        executor: Optional[str] = None,
    ) -> list:
        """Execute a batch of queries through one shared-scan cache:
        identical scans and common step prefixes across the batch run
        once and fan out to every consumer (:mod:`repro.plan.batch`).

        Each entry is a query (string or AST) or a mapping with keys
        ``query`` and optionally ``limit`` / ``agg`` / ``pivot``.
        Returns one result per entry — the same row list (or aggregate
        dict) the equivalent :meth:`query` / :meth:`aggregate` call
        produces."""
        from ..plan.batch import run_batch

        return run_batch(self._compile_batch(queries, pivot, executor))

    def explain_batch(
        self,
        queries: Sequence,
        pivot: bool = False,
        executor: Optional[str] = None,
    ) -> str:
        """Render the shared-scan DAG :meth:`query_batch` would execute,
        with reuse annotations on every shared step prefix."""
        from ..plan.batch import explain_batch

        return explain_batch(self._compile_batch(queries, pivot, executor))

    def _compile_batch(
        self, queries: Sequence, pivot: bool, executor: Optional[str]
    ) -> list:
        if self._compiler is None:
            raise LPathError("engine is closed")
        compiled = []
        for entry in queries:
            options = {"pivot": pivot}
            if isinstance(entry, dict):
                spec = dict(entry)
                query = spec.pop("query", None)
                if query is None:
                    raise LPathError("batch entry mapping needs a 'query' key")
                unknown = set(spec) - {"limit", "agg", "pivot"}
                if unknown:
                    raise LPathError(
                        f"unknown batch entry keys: {', '.join(sorted(unknown))}"
                    )
                options.update(spec)
            else:
                query = entry
            compiled.append(self.compile(query, executor=executor, **options))
        return compiled

    def nodes(
        self, query: Query, pivot: bool = False, executor: Optional[str] = None
    ) -> list[TreeNode]:
        """Matched tree nodes (needs ``keep_trees=True``)."""
        if self._by_id is None:
            raise LPathError("engine was built with keep_trees=False")
        result = []
        for tid, node_id in self.query(query, pivot=pivot, executor=executor):
            result.append(self._by_id[tid].node_by_id(node_id))
        return result

    # -- compilation artifacts -------------------------------------------------

    def compile(
        self,
        query: Query,
        pivot: bool = False,
        executor: Optional[str] = None,
        limit: Optional[int] = None,
        agg: Optional[str] = None,
    ):
        """Compile to a shared-IR plan, via the per-engine plan cache."""
        if self._compiler is None:
            raise LPathError("engine is closed")
        return cached_compile(
            self.plan_cache,
            self._compiler,
            query,
            pivot,
            executor=executor if executor is not None else self.executor,
            limit=limit,
            agg=agg,
        )

    def to_sql(self, query: Query) -> str:
        """The SQL text the paper's translation module would emit."""
        path = parse(query) if isinstance(query, str) else query
        return self._sql.generate(path)

    def cache_stats(self) -> dict[str, int]:
        """Plan-cache observability: hits, misses, evictions, size and
        capacity of this engine's LRU plan cache."""
        return self.plan_cache.stats

    def explain(
        self, query: Query, pivot: bool = False, executor: Optional[str] = None,
        limit: Optional[int] = None, agg: Optional[str] = None,
    ) -> str:
        """Logical-IR and physical plan description."""
        return self.compile(
            query, pivot=pivot, executor=executor, limit=limit, agg=agg
        ).explain()

    # -- backends ---------------------------------------------------------------

    @property
    def sqlite(self) -> SQLiteBackend:
        """The lazily created SQLite differential backend."""
        if self._sqlite is None:
            if self._rows is None:
                raise LPathError(
                    "columnar-only engine has no row storage for SQLite"
                )
            self._sqlite = SQLiteBackend(self._rows)
        return self._sqlite

    @property
    def treewalk(self) -> TreeWalkEvaluator:
        """The tree-walking reference evaluator."""
        if self._treewalk is None:
            raise LPathError(
                "this engine keeps no trees (built with keep_trees=False, "
                "from_labels or from_columns), so the treewalk backend is "
                "unavailable"
            )
        return self._treewalk

    def close(self) -> None:
        """Release every backend resource: the SQLite oracle, the worker
        pool, cached plans, the relational store / row references, and —
        for mmap-backed engines — the file mapping itself, which
        invalidates every adopted column view (later reads through a
        stale reference raise ``ValueError``).  Idempotent; queries on a
        closed engine raise :class:`LPathError`."""
        if self._sqlite is not None:
            self._sqlite.close()
            self._sqlite = None
        self._pool.shutdown()
        self.plan_cache.clear()
        self.database = None
        self.node_table = None
        self._rows = None
        self._compiler = None
        self._treewalk = None
        self._by_id = None
        self.trees = []
        mapped = getattr(self, "_mapped", None)
        if mapped is not None:
            mapped.close()
            self._mapped = None

    def __enter__(self) -> "LPathEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def engine_from_bracketed(text: str, **kwargs) -> LPathEngine:
    """Convenience: build an engine straight from bracketed trees."""
    from ..tree.bracket import iter_trees

    return LPathEngine(list(iter_trees(text)), **kwargs)
