"""LPath-to-SQL translation (the paper's yacc-based translation module).

Generates one SQL statement per query over the Section 5 schema
``node(tid, left, right, depth, id, pid, name, value)``:

* each step becomes a relation alias joined with its context via the
  Table 2 label comparisons;
* predicates become (NOT) EXISTS correlated subqueries;
* subtree scoping and edge alignment become extra comparisons against the
  scope alias (or the tree root for unscoped alignment);
* restricted positional predicates become correlated sibling counts.

The emitted text is executed verbatim by the SQLite backend and
differential-tested against the plan compiler and the tree-walk evaluator.
``left``/``right`` are SQL keywords, hence the quoting throughout.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .ast import (
    AndExpr,
    Comparison,
    FunctionCall,
    Literal,
    NodeTest,
    NotExpr,
    Number,
    OrExpr,
    Path,
    PathExists,
    PredicateExpr,
    Scope,
    Step,
)
from .axes import Axis, CONDITIONS, OR_SELF_BASES
from .errors import LPathCompileError

_POSITIONAL_AXES = {
    Axis.CHILD,
    Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING,
    Axis.IMMEDIATE_FOLLOWING_SIBLING,
    Axis.IMMEDIATE_PRECEDING_SIBLING,
}


def _quote_string(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def _col(alias: str, column: str) -> str:
    return f'{alias}."{column}"'


class SQLGenerator:
    """Stateless front end; each :meth:`generate` call is independent."""

    def __init__(self, table: str = "node") -> None:
        self.table = table

    def generate(self, path: Path) -> str:
        """Translate an absolute LPath query to one SQL statement."""
        state = _State(self.table)
        result_alias = state.compile_items(
            list(path.items), ctx_alias=None, scope_alias=None
        )
        from_clause = ", ".join(
            f'"{self.table}" {alias}' for alias in state.aliases
        )
        where = " AND ".join(state.conditions) if state.conditions else "1=1"
        return (
            f'SELECT DISTINCT {_col(result_alias, "tid")}, {_col(result_alias, "id")}\n'
            f"FROM {from_clause}\n"
            f"WHERE {where}"
        )


class _State:
    """Alias allocation and condition accumulation for one query."""

    def __init__(self, table: str, counter_start: int = 0) -> None:
        self.table = table
        self.aliases: list[str] = []
        self.conditions: list[str] = []
        self.counter = counter_start

    def fresh_alias(self) -> str:
        alias = f"t{self.counter}"
        self.counter += 1
        self.aliases.append(alias)
        return alias

    # -- path compilation ----------------------------------------------------

    def compile_items(
        self,
        items: Sequence,
        ctx_alias: Optional[str],
        scope_alias: Optional[str],
    ) -> str:
        if not items:
            raise LPathCompileError("empty path")
        current = ctx_alias
        index = 0
        while index < len(items):
            item = items[index]
            if isinstance(item, Scope):
                if index != len(items) - 1:
                    raise LPathCompileError("steps after a scope are not allowed")
                if current is None:
                    raise LPathCompileError("a scope needs a context node")
                return self.compile_items(
                    list(item.body.items), ctx_alias=current, scope_alias=current
                )
            step = item
            if step.axis is Axis.SELF:
                if current is None:
                    raise LPathCompileError("a query cannot start with self")
                self._node_test(current, step.test)
                self._alignment(current, step, scope_alias)
                self._predicates(current, step, None, scope_alias, check_positional=True)
                index += 1
                continue
            current = self._join_step(step, current, scope_alias)
            index += 1
        if current is None:
            raise LPathCompileError("query selects nothing")
        return current

    def _join_step(
        self, step: Step, ctx_alias: Optional[str], scope_alias: Optional[str]
    ) -> str:
        alias = self.fresh_alias()
        if ctx_alias is None:
            # First step of an absolute query: context is the document.
            if step.axis is Axis.DESCENDANT:
                pass  # every node is a descendant-or-self of the document
            elif step.axis is Axis.CHILD:
                self.conditions.append(f'{_col(alias, "pid")} = 0')
            else:
                raise LPathCompileError(
                    f"a query cannot start with the {step.axis.value} axis"
                )
        else:
            self.conditions.append(
                f'{_col(alias, "tid")} = {_col(ctx_alias, "tid")}'
            )
            base = OR_SELF_BASES.get(step.axis)
            if base is not None:
                conjuncts = " AND ".join(
                    f'{_col(alias, c.column)} {c.op} {_col(ctx_alias, c.context_column)}'
                    for c in CONDITIONS[base]
                )
                self.conditions.append(
                    f'(({conjuncts}) OR {_col(alias, "id")} = {_col(ctx_alias, "id")})'
                )
            else:
                for condition in CONDITIONS[step.axis]:
                    self.conditions.append(
                        f'{_col(alias, condition.column)} {condition.op} '
                        f'{_col(ctx_alias, condition.context_column)}'
                    )
        if step.axis is Axis.ATTRIBUTE:
            if step.test.is_wildcard:
                self.conditions.append(
                    f'substr({_col(alias, "name")}, 1, 1) = \'@\''
                )
            else:
                self.conditions.append(
                    f'{_col(alias, "name")} = {_quote_string("@" + step.test.name)}'
                )
        else:
            self._node_test(alias, step.test)
        if scope_alias is not None:
            self.conditions.append(
                f'{_col(alias, "left")} >= {_col(scope_alias, "left")}'
            )
            self.conditions.append(
                f'{_col(alias, "right")} <= {_col(scope_alias, "right")}'
            )
            self.conditions.append(
                f'{_col(alias, "depth")} >= {_col(scope_alias, "depth")}'
            )
        self._alignment(alias, step, scope_alias)
        self._predicates(alias, step, ctx_alias, scope_alias, check_positional=False)
        return alias

    def _node_test(self, alias: str, test: NodeTest) -> None:
        if test.is_wildcard:
            self.conditions.append(f'substr({_col(alias, "name")}, 1, 1) <> \'@\'')
        else:
            self.conditions.append(
                f'{_col(alias, "name")} = {_quote_string(test.name)}'
            )

    def _alignment(
        self, alias: str, step: Step, scope_alias: Optional[str]
    ) -> None:
        if step.left_aligned:
            if scope_alias is None:
                self.conditions.append(f'{_col(alias, "left")} = 1')
            else:
                self.conditions.append(
                    f'{_col(alias, "left")} = {_col(scope_alias, "left")}'
                )
        if step.right_aligned:
            if scope_alias is None:
                self.conditions.append(
                    f'{_col(alias, "right")} = ('
                    f'SELECT MAX(r."right") FROM "{self.table}" r '
                    f'WHERE r."tid" = {_col(alias, "tid")})'
                )
            else:
                self.conditions.append(
                    f'{_col(alias, "right")} = {_col(scope_alias, "right")}'
                )

    # -- predicates -------------------------------------------------------------

    def _predicates(
        self,
        alias: str,
        step: Step,
        ctx_alias: Optional[str],
        scope_alias: Optional[str],
        check_positional: bool,
    ) -> None:
        for index, predicate in enumerate(step.predicates):
            if _mentions_position(predicate):
                if check_positional or ctx_alias is None:
                    raise LPathCompileError(
                        "positional predicates are not supported here by the "
                        "SQL translation"
                    )
                if index != 0:
                    raise LPathCompileError(
                        "positional predicates must come first on their step"
                    )
                self.conditions.append(
                    self._positional(predicate, step, alias, ctx_alias)
                )
            else:
                self.conditions.append(
                    self._boolean(predicate, alias, scope_alias)
                )

    def _boolean(
        self, expr: PredicateExpr, ctx_alias: str, scope_alias: Optional[str]
    ) -> str:
        if isinstance(expr, OrExpr):
            return "(" + " OR ".join(
                self._boolean(part, ctx_alias, scope_alias) for part in expr.parts
            ) + ")"
        if isinstance(expr, AndExpr):
            return "(" + " AND ".join(
                self._boolean(part, ctx_alias, scope_alias) for part in expr.parts
            ) + ")"
        if isinstance(expr, NotExpr):
            return "NOT " + self._boolean(expr.part, ctx_alias, scope_alias)
        if isinstance(expr, PathExists):
            return self._exists(expr.path, ctx_alias, scope_alias)
        if isinstance(expr, Comparison):
            return self._comparison(expr, ctx_alias, scope_alias)
        if isinstance(expr, FunctionCall):
            if expr.name == "true":
                return "1=1"
            if expr.name == "false":
                return "1=0"
            raise LPathCompileError(
                f"function {expr.name}() is not usable as a boolean in SQL"
            )
        raise LPathCompileError(f"cannot translate predicate {expr}")

    def _exists(
        self, path: Path, ctx_alias: str, scope_alias: Optional[str]
    ) -> str:
        inner = _State(self.table, counter_start=self.counter + 1000)
        inner.compile_items(list(path.items), ctx_alias=ctx_alias, scope_alias=scope_alias)
        if not inner.aliases:
            # Pure self steps add no relations; the conditions reference the
            # outer alias directly.
            if not inner.conditions:
                return "1=1"
            return "(" + " AND ".join(inner.conditions) + ")"
        from_clause = ", ".join(f'"{self.table}" {alias}' for alias in inner.aliases)
        where = " AND ".join(inner.conditions) if inner.conditions else "1=1"
        return f"EXISTS (SELECT 1 FROM {from_clause} WHERE {where})"

    def _comparison(
        self, expr: Comparison, ctx_alias: str, scope_alias: Optional[str]
    ) -> str:
        left, op, right = expr.left, expr.op, expr.right
        if isinstance(left, FunctionCall) and left.name == "name" and isinstance(right, (Literal, Number)):
            wanted = right.value if isinstance(right, Literal) else str(right.value)
            sql_op = "=" if op == "=" else "<>"
            if op not in ("=", "!="):
                raise LPathCompileError("name() only supports = and !=")
            return f'{_col(ctx_alias, "name")} {sql_op} {_quote_string(wanted)}'
        if isinstance(left, FunctionCall) and left.name == "count":
            return self._count_comparison(left, op, right, ctx_alias, scope_alias)
        if isinstance(right, FunctionCall) and right.name == "count":
            flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}
            return self._count_comparison(right, flipped[op], left, ctx_alias, scope_alias)
        if isinstance(left, PathExists) and isinstance(right, (Literal, Number)):
            return self._value_comparison(left.path, op, right, ctx_alias, scope_alias)
        if isinstance(right, PathExists) and isinstance(left, (Literal, Number)):
            flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}
            return self._value_comparison(
                right.path, flipped[op], left, ctx_alias, scope_alias
            )
        raise LPathCompileError(f"comparison {expr} is not supported in SQL")

    def _value_comparison(
        self,
        path: Path,
        op: str,
        literal,
        ctx_alias: str,
        scope_alias: Optional[str],
    ) -> str:
        last = path.last_step()
        if not (isinstance(last, Step) and last.axis is Axis.ATTRIBUTE):
            raise LPathCompileError(
                "SQL value comparisons need an attribute-final path "
                "(element string values are only supported by the plan and "
                "tree-walk backends)"
            )
        inner = _State(self.table, counter_start=self.counter + 2000)
        final = inner.compile_items(
            list(path.items), ctx_alias=ctx_alias, scope_alias=scope_alias
        )
        value = _col(final, "value")
        if isinstance(literal, Number):
            number = literal.value
            rendered = str(int(number)) if number == int(number) else str(number)
            condition = f"CAST({value} AS REAL) {_sql_op(op)} {rendered}"
        elif op in ("<", "<=", ">", ">="):
            condition = f"CAST({value} AS REAL) {_sql_op(op)} CAST({_quote_string(literal.value)} AS REAL)"
        else:
            condition = f"{value} {_sql_op(op)} {_quote_string(literal.value)}"
        inner.conditions.append(condition)
        from_clause = ", ".join(f'"{self.table}" {alias}' for alias in inner.aliases)
        where = " AND ".join(inner.conditions)
        return f"EXISTS (SELECT 1 FROM {from_clause} WHERE {where})"

    def _count_comparison(
        self,
        call: FunctionCall,
        op: str,
        other: PredicateExpr,
        ctx_alias: str,
        scope_alias: Optional[str],
    ) -> str:
        argument = call.args[0]
        if not isinstance(argument, PathExists):
            raise LPathCompileError("count() takes a path argument")
        if not isinstance(other, (Number, Literal)):
            raise LPathCompileError("count() comparisons need a numeric operand")
        try:
            target = float(str(other.value))
        except ValueError:
            raise LPathCompileError("count() comparisons need a numeric operand")
        inner = _State(self.table, counter_start=self.counter + 3000)
        final = inner.compile_items(
            list(argument.path.items), ctx_alias=ctx_alias, scope_alias=scope_alias
        )
        from_clause = ", ".join(f'"{self.table}" {alias}' for alias in inner.aliases)
        where = " AND ".join(inner.conditions) if inner.conditions else "1=1"
        rendered = str(int(target)) if target == int(target) else str(target)
        return (
            f"(SELECT COUNT(*) FROM (SELECT DISTINCT {_col(final, 'tid')}, "
            f"{_col(final, 'id')}, {_col(final, 'name')} "
            f"FROM {from_clause} WHERE {where})) {_sql_op(op)} {rendered}"
        )

    # -- positional -----------------------------------------------------------------

    def _positional(
        self, predicate: PredicateExpr, step: Step, alias: str, ctx_alias: str
    ) -> str:
        if step.axis not in _POSITIONAL_AXES:
            raise LPathCompileError(
                f"positional predicates on the {step.axis.value} axis are not "
                "supported by the SQL translation"
            )
        if not isinstance(predicate, Comparison):
            raise LPathCompileError("unsupported positional predicate form")
        left, op, right = predicate.left, predicate.op, predicate.right
        if not (isinstance(left, FunctionCall) and left.name == "position"):
            raise LPathCompileError("positional predicates must test position()")
        z = f"z{self.counter + 4000}"
        if step.test.is_wildcard:
            node_test = f'substr({_col(z, "name")}, 1, 1) <> \'@\''
        else:
            node_test = f'{_col(z, "name")} = {_quote_string(step.test.name)}'
        shared = (
            f'{_col(z, "tid")} = {_col(alias, "tid")} AND '
            f'{_col(z, "pid")} = {_col(alias, "pid")} AND {node_test}'
        )
        if step.axis is Axis.CHILD:
            before = f'{_col(z, "left")} < {_col(alias, "left")}'
        elif step.axis in (Axis.FOLLOWING_SIBLING, Axis.IMMEDIATE_FOLLOWING_SIBLING):
            before = (
                f'{_col(z, "left")} >= {_col(ctx_alias, "right")} AND '
                f'{_col(z, "left")} < {_col(alias, "left")}'
            )
        else:
            before = (
                f'{_col(z, "right")} <= {_col(ctx_alias, "left")} AND '
                f'{_col(z, "right")} > {_col(alias, "right")}'
            )
        if isinstance(right, FunctionCall) and right.name == "last":
            if op != "=":
                raise LPathCompileError("only position()=last() is supported")
            if step.axis in (Axis.PRECEDING_SIBLING, Axis.IMMEDIATE_PRECEDING_SIBLING):
                after = f'{_col(z, "right")} <= {_col(alias, "left")}'
            else:
                after = f'{_col(z, "left")} >= {_col(alias, "right")}'
            return (
                f'NOT EXISTS (SELECT 1 FROM "{self.table}" {z} '
                f"WHERE {shared} AND {after})"
            )
        if not isinstance(right, Number):
            raise LPathCompileError("position() must be compared to a number or last()")
        target = int(right.value) - 1
        return (
            f'(SELECT COUNT(*) FROM "{self.table}" {z} '
            f"WHERE {shared} AND {before}) {_sql_op(op)} {target}"
        )


def _sql_op(op: str) -> str:
    return "<>" if op == "!=" else op


def _mentions_position(expr: PredicateExpr) -> bool:
    if isinstance(expr, (OrExpr, AndExpr)):
        return any(_mentions_position(part) for part in expr.parts)
    if isinstance(expr, NotExpr):
        return _mentions_position(expr.part)
    if isinstance(expr, Comparison):
        return _mentions_position(expr.left) or _mentions_position(expr.right)
    if isinstance(expr, FunctionCall):
        return expr.name in ("position", "last")
    return False
