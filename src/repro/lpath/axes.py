"""The LPath axis inventory (Table 1) and its label-comparison conditions.

This module is the single source of truth shared by the tree-walk
evaluator, the relational compiler and the SQL generator:

* :class:`Axis` enumerates every LPath axis with its abbreviation,
  navigation type, transitive-closure relationships and Core-XPath support
  (reproducing Table 1 of the paper);
* :data:`CONDITIONS` gives, for each axis, the Table 2 label comparisons
  ``x.col <op> context.col`` that decide "x stands in this axis relation
  to the context node".
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Optional


class NavigationType(enum.Enum):
    """Table 1's Type column."""

    VERTICAL = "Vertical"
    HORIZONTAL = "Horizontal"
    SIBLING = "Sibling"
    OTHER = "Other"


class Axis(enum.Enum):
    """Every axis of the LPath language."""

    CHILD = "child"
    DESCENDANT = "descendant"
    DESCENDANT_OR_SELF = "descendant-or-self"
    PARENT = "parent"
    ANCESTOR = "ancestor"
    ANCESTOR_OR_SELF = "ancestor-or-self"
    IMMEDIATE_FOLLOWING = "immediate-following"
    FOLLOWING = "following"
    FOLLOWING_OR_SELF = "following-or-self"
    IMMEDIATE_PRECEDING = "immediate-preceding"
    PRECEDING = "preceding"
    PRECEDING_OR_SELF = "preceding-or-self"
    IMMEDIATE_FOLLOWING_SIBLING = "immediate-following-sibling"
    FOLLOWING_SIBLING = "following-sibling"
    FOLLOWING_SIBLING_OR_SELF = "following-sibling-or-self"
    IMMEDIATE_PRECEDING_SIBLING = "immediate-preceding-sibling"
    PRECEDING_SIBLING = "preceding-sibling"
    PRECEDING_SIBLING_OR_SELF = "preceding-sibling-or-self"
    SELF = "self"
    ATTRIBUTE = "attribute"


class AxisInfo(NamedTuple):
    """One row of Table 1."""

    axis: Axis
    navigation: NavigationType
    abbreviation: Optional[str]
    closure_of: Optional[Axis]          # "Closure" column: this axis is the
                                        # transitive closure of `closure_of`
    core_xpath: bool                    # supported by Core XPath?


#: Table 1 of the paper (or-self variants included, namespace axis omitted,
#: exactly as in the paper's own presentation).
TABLE_1: tuple[AxisInfo, ...] = (
    AxisInfo(Axis.CHILD, NavigationType.VERTICAL, "/", None, True),
    AxisInfo(Axis.DESCENDANT, NavigationType.VERTICAL, "/descendant::", Axis.CHILD, True),
    AxisInfo(Axis.PARENT, NavigationType.VERTICAL, "\\", None, True),
    AxisInfo(Axis.ANCESTOR, NavigationType.VERTICAL, "\\ancestor::", Axis.PARENT, True),
    AxisInfo(Axis.IMMEDIATE_FOLLOWING, NavigationType.HORIZONTAL, "->", None, False),
    AxisInfo(Axis.FOLLOWING, NavigationType.HORIZONTAL, "-->", Axis.IMMEDIATE_FOLLOWING, True),
    AxisInfo(Axis.IMMEDIATE_PRECEDING, NavigationType.HORIZONTAL, "<-", None, False),
    AxisInfo(Axis.PRECEDING, NavigationType.HORIZONTAL, "<--", Axis.IMMEDIATE_PRECEDING, True),
    AxisInfo(Axis.IMMEDIATE_FOLLOWING_SIBLING, NavigationType.SIBLING, "=>", None, False),
    AxisInfo(Axis.FOLLOWING_SIBLING, NavigationType.SIBLING, "==>", Axis.IMMEDIATE_FOLLOWING_SIBLING, True),
    AxisInfo(Axis.IMMEDIATE_PRECEDING_SIBLING, NavigationType.SIBLING, "<=", None, False),
    AxisInfo(Axis.PRECEDING_SIBLING, NavigationType.SIBLING, "<==", Axis.IMMEDIATE_PRECEDING_SIBLING, True),
    AxisInfo(Axis.SELF, NavigationType.OTHER, ".", None, True),
    AxisInfo(Axis.ATTRIBUTE, NavigationType.OTHER, "@", None, True),
)

AXIS_INFO: dict[Axis, AxisInfo] = {info.axis: info for info in TABLE_1}

#: Axis spelled out with ``axisname::`` syntax (XPath compatibility).
NAMED_AXES: dict[str, Axis] = {axis.value: axis for axis in Axis}

#: LPath arrow abbreviations, longest first for maximal-munch lexing.
ARROWS: tuple[tuple[str, Axis], ...] = (
    ("-->", Axis.FOLLOWING),
    ("->", Axis.IMMEDIATE_FOLLOWING),
    ("<--", Axis.PRECEDING),
    ("<==", Axis.PRECEDING_SIBLING),
    ("<=", Axis.IMMEDIATE_PRECEDING_SIBLING),
    ("<-", Axis.IMMEDIATE_PRECEDING),
    ("==>", Axis.FOLLOWING_SIBLING),
    ("=>", Axis.IMMEDIATE_FOLLOWING_SIBLING),
)


class Condition(NamedTuple):
    """One Table 2 comparison: ``x.<column> <op> context.<context_column>``."""

    column: str
    op: str
    context_column: str


#: Table 2: label comparisons deciding each axis (``tid`` equality is
#: implicit everywhere and handled separately by both backends).
CONDITIONS: dict[Axis, tuple[Condition, ...]] = {
    Axis.CHILD: (Condition("pid", "=", "id"),),
    Axis.PARENT: (Condition("id", "=", "pid"),),
    Axis.DESCENDANT: (
        Condition("left", ">=", "left"),
        Condition("right", "<=", "right"),
        Condition("depth", ">", "depth"),
    ),
    Axis.DESCENDANT_OR_SELF: (
        Condition("left", ">=", "left"),
        Condition("right", "<=", "right"),
        Condition("depth", ">=", "depth"),
    ),
    Axis.ANCESTOR: (
        Condition("left", "<=", "left"),
        Condition("right", ">=", "right"),
        Condition("depth", "<", "depth"),
    ),
    Axis.ANCESTOR_OR_SELF: (
        Condition("left", "<=", "left"),
        Condition("right", ">=", "right"),
        Condition("depth", "<=", "depth"),
    ),
    Axis.IMMEDIATE_FOLLOWING: (Condition("left", "=", "right"),),
    Axis.FOLLOWING: (Condition("left", ">=", "right"),),
    Axis.IMMEDIATE_PRECEDING: (Condition("right", "=", "left"),),
    Axis.PRECEDING: (Condition("right", "<=", "left"),),
    Axis.IMMEDIATE_FOLLOWING_SIBLING: (
        Condition("pid", "=", "pid"),
        Condition("left", "=", "right"),
    ),
    Axis.FOLLOWING_SIBLING: (
        Condition("pid", "=", "pid"),
        Condition("left", ">=", "right"),
    ),
    Axis.IMMEDIATE_PRECEDING_SIBLING: (
        Condition("pid", "=", "pid"),
        Condition("right", "=", "left"),
    ),
    Axis.PRECEDING_SIBLING: (
        Condition("pid", "=", "pid"),
        Condition("right", "<=", "left"),
    ),
    Axis.SELF: (Condition("id", "=", "id"),),
    Axis.ATTRIBUTE: (Condition("id", "=", "id"),),
}

#: The or-self horizontal/sibling axes (Section 3: included "so that the
#: axis set contains both primary axes and their transitive closure").
#: They are disjunctive — base-axis conditions OR self — so they live
#: outside the conjunctive Table 2 map; this table names their base axis.
OR_SELF_BASES: dict[Axis, Axis] = {
    Axis.FOLLOWING_OR_SELF: Axis.FOLLOWING,
    Axis.PRECEDING_OR_SELF: Axis.PRECEDING,
    Axis.FOLLOWING_SIBLING_OR_SELF: Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING_OR_SELF: Axis.PRECEDING_SIBLING,
}

#: Axes whose result nodes must be element rows (all but attribute).
ELEMENT_AXES = frozenset(axis for axis in Axis if axis is not Axis.ATTRIBUTE)

#: Reverse axes: document order of results runs backwards, which matters
#: for XPath positional predicates.
REVERSE_AXES = frozenset(
    {
        Axis.PARENT,
        Axis.ANCESTOR,
        Axis.ANCESTOR_OR_SELF,
        Axis.IMMEDIATE_PRECEDING,
        Axis.PRECEDING,
        Axis.PRECEDING_OR_SELF,
        Axis.IMMEDIATE_PRECEDING_SIBLING,
        Axis.PRECEDING_SIBLING,
        Axis.PRECEDING_SIBLING_OR_SELF,
    }
)


def closure_pairs() -> list[tuple[Axis, Axis]]:
    """(primitive, closure) pairs from Table 1: the gap LPath fills."""
    return [
        (info.closure_of, info.axis)
        for info in TABLE_1
        if info.closure_of is not None
    ]
