"""Render LPath ASTs back to query text (LPath surface syntax).

``parse(unparse(ast)) == ast`` is property-tested; round-tripping keeps the
abbreviated forms (arrows, ``//``, ``\\``) rather than the verbose
``axisname::`` spellings.
"""

from __future__ import annotations

from .ast import (
    AndExpr,
    Comparison,
    FunctionCall,
    Literal,
    NotExpr,
    Number,
    OrExpr,
    Path,
    PathExists,
    PredicateExpr,
    Scope,
    Step,
)
from .axes import Axis

#: Preferred surface spelling per axis when it heads a step.
_AXIS_PREFIX = {
    Axis.CHILD: "/",
    Axis.DESCENDANT: "//",
    Axis.DESCENDANT_OR_SELF: "/descendant-or-self::",
    Axis.PARENT: "\\",
    Axis.ANCESTOR: "\\ancestor::",
    Axis.ANCESTOR_OR_SELF: "\\ancestor-or-self::",
    Axis.IMMEDIATE_FOLLOWING: "->",
    Axis.FOLLOWING: "-->",
    Axis.FOLLOWING_OR_SELF: "/following-or-self::",
    Axis.IMMEDIATE_PRECEDING: "<-",
    Axis.PRECEDING: "<--",
    Axis.PRECEDING_OR_SELF: "/preceding-or-self::",
    Axis.IMMEDIATE_FOLLOWING_SIBLING: "=>",
    Axis.FOLLOWING_SIBLING: "==>",
    Axis.FOLLOWING_SIBLING_OR_SELF: "/following-sibling-or-self::",
    Axis.IMMEDIATE_PRECEDING_SIBLING: "<=",
    Axis.PRECEDING_SIBLING: "<==",
    Axis.PRECEDING_SIBLING_OR_SELF: "/preceding-sibling-or-self::",
    Axis.SELF: "/self::",
    Axis.ATTRIBUTE: "/@",
}

_PLAIN_NAME_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-")


def _render_name(name: str) -> str:
    if name and all(char in _PLAIN_NAME_SAFE for char in name):
        return name
    return "'" + name + "'"


def step_to_string(step: Step, leading: bool = False) -> str:
    """Render one step; ``leading`` drops the axis marker where LPath allows."""
    if step.axis is Axis.ATTRIBUTE:
        prefix = "@" if leading else "/@"
        body = _render_name(step.test.name)
    else:
        prefix = _AXIS_PREFIX[step.axis]
        if leading and step.axis is Axis.CHILD:
            prefix = ""
        if leading and step.axis is Axis.SELF:
            prefix = "self::"
        body = _render_name(step.test.name)
    caret = "^" if step.left_aligned else ""
    dollar = "$" if step.right_aligned else ""
    predicates = "".join(f"[{predicate_to_string(p)}]" for p in step.predicates)
    return f"{prefix}{caret}{body}{dollar}{predicates}"


def path_to_string(path: Path) -> str:
    """Render a whole path."""
    parts: list[str] = []
    for position, item in enumerate(path.items):
        if isinstance(item, Scope):
            parts.append("{" + path_to_string(item.body) + "}")
        else:
            leading = position == 0 and not path.absolute
            parts.append(step_to_string(item, leading=leading))
    return "".join(parts)


def predicate_to_string(expr: PredicateExpr) -> str:
    """Render a predicate expression."""
    if isinstance(expr, OrExpr):
        return " or ".join(_grouped(part) for part in expr.parts)
    if isinstance(expr, AndExpr):
        return " and ".join(_grouped(part) for part in expr.parts)
    if isinstance(expr, NotExpr):
        return f"not({predicate_to_string(expr.part)})"
    if isinstance(expr, PathExists):
        return path_to_string(expr.path)
    if isinstance(expr, Comparison):
        return (
            f"{predicate_to_string(expr.left)}{expr.op}"
            f"{predicate_to_string(expr.right)}"
        )
    if isinstance(expr, Literal):
        return "'" + expr.value + "'"
    if isinstance(expr, Number):
        value = expr.value
        return str(int(value)) if value == int(value) else str(value)
    if isinstance(expr, FunctionCall):
        body = ", ".join(predicate_to_string(arg) for arg in expr.args)
        return f"{expr.name}({body})"
    raise TypeError(f"cannot render {type(expr).__name__}")


def _grouped(expr: PredicateExpr) -> str:
    text = predicate_to_string(expr)
    if isinstance(expr, (OrExpr, AndExpr)):
        return f"({text})"
    return text
