"""LPath: the paper's XPath dialect for linguistic queries.

Public surface:

* :func:`parse` — LPath text to AST,
* :class:`LPathEngine` — load trees, run queries on any backend,
* :class:`TreeWalkEvaluator` — the reference evaluator,
* :mod:`repro.lpath.axes` — the Table 1 axis inventory.

The plan backend compiles through the shared logical IR in
:mod:`repro.plan` (one lowerer/optimizer/interpreter for both the LPath
and XPath engines).
"""

from . import axes
from .ast import Path, Scope, Step
from .compiler import PlanCompiler
from .engine import BACKENDS, LPathEngine, engine_from_bracketed
from .errors import (
    LPathCompileError,
    LPathError,
    LPathEvaluationError,
    LPathSyntaxError,
)
from .parser import parse, parse_relative
from .sql import SQLGenerator
from .treewalk import TreeWalkEvaluator

__all__ = [
    "BACKENDS",
    "LPathCompileError",
    "LPathEngine",
    "LPathError",
    "LPathEvaluationError",
    "LPathSyntaxError",
    "Path",
    "PlanCompiler",
    "SQLGenerator",
    "Scope",
    "Step",
    "TreeWalkEvaluator",
    "axes",
    "engine_from_bracketed",
    "parse",
    "parse_relative",
]
