"""Compile LPath queries into index-driven plans over the label relation.

Following Section 4 of the paper, every LPath axis becomes a join whose
condition is the Table 2 label comparison; joins are evaluated index-nested-
loop style against the paper's physical design (clustered
``{name, tid, left, ...}`` plus the ``{tid, value, id}``, ``{value, tid,
id}`` and ``{tid, id, ...}`` secondary indexes).

A *binding* is the concatenation of the label rows matched by the steps so
far (8 columns per step).  Offsets are assigned at compile time; scope nodes
stay in the binding so scoping and edge alignment are plain column
comparisons.  Predicates compile to boolean functions over bindings and run
as (anti) semijoins with early termination.

Positional predicates (``position()``/``last()``) are supported in the
restricted forms needed by XPath rewrites — a positional predicate must be
the first predicate of its step and its axis must be child or a sibling
axis; the tree-walk evaluator covers the general semantics.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from ..relational.database import NODE_COLUMNS
from ..relational.expression import Func
from ..relational.operators import Distinct, IndexNestedLoopJoin, Operator, Select, Source
from ..relational.table import Table
from .ast import (
    AndExpr,
    Comparison,
    FunctionCall,
    Literal,
    NodeTest,
    NotExpr,
    Number,
    OrExpr,
    Path,
    PathExists,
    PredicateExpr,
    Scope,
    Step,
)
from .axes import Axis
from .errors import LPathCompileError
from .parser import parse

# Column offsets within one label row.
T, L, R, D, I, P, N, V = range(8)
ROW_WIDTH = len(NODE_COLUMNS)

BindingCheck = Callable[[tuple], bool]
RowProbe = Callable[[tuple], Iterable[tuple]]

#: Sibling-family axes that support restricted positional predicates.
_POSITIONAL_AXES = {
    Axis.CHILD,
    Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING,
    Axis.IMMEDIATE_FOLLOWING_SIBLING,
    Axis.IMMEDIATE_PRECEDING_SIBLING,
}


def _is_element_row(row: tuple) -> bool:
    return not row[N].startswith("@")


class _StepExec:
    """One executable step: index probe + residual checks + predicates."""

    __slots__ = ("probe", "residuals", "checks", "description")

    def __init__(
        self,
        probe: RowProbe,
        residuals: Sequence[BindingCheck],
        checks: Sequence[BindingCheck],
        description: str,
    ) -> None:
        self.probe = probe
        self.residuals = list(residuals)
        self.checks = list(checks)
        self.description = description

    def matches(self, binding: tuple) -> Iterable[tuple]:
        """Rows extending ``binding`` at this step."""
        residuals, checks = self.residuals, self.checks
        for row in self.probe(binding):
            combined = binding + row
            if all(residual(combined) for residual in residuals) and all(
                check(combined) for check in checks
            ):
                yield row


class CompiledQuery:
    """A compiled main pipeline ready to execute."""

    def __init__(self, plan: Operator, result_base: int, description: str) -> None:
        self.plan = plan
        self.result_base = result_base
        self.description = description

    def rows(self) -> Iterable[tuple]:
        """Distinct ``(tid, id)`` pairs of the result step, sorted."""
        return sorted(self.plan)

    def count(self) -> int:
        total = 0
        for _ in self.plan:
            total += 1
        return total

    def explain(self) -> str:
        return self.description + "\n" + self.plan.explain()


class PlanCompiler:
    """Compiles parsed LPath queries against one loaded node table."""

    def __init__(self, table: Table, root_right: dict[int, int]) -> None:
        self.table = table
        self.clustered = table.clustered
        self.by_tid_id = table.index("idx_tid_id")
        self.by_value = table.index("idx_value_tid_id")
        self.root_right = root_right
        self.reverse_index = table.indexes.get("idx_name_tid_right")

    # -- public API --------------------------------------------------------

    def compile(self, query, pivot: bool = False) -> CompiledQuery:
        """Compile a query; ``pivot=True`` enables selectivity-driven join
        ordering: when the query is a plain step chain, the join starts at
        the step with the rarest tag and extends leftward through inverted
        axes.  An optimization beyond the paper (see DESIGN.md ablations)."""
        path = parse(query) if isinstance(query, str) else query
        items = list(path.items)
        if not items or isinstance(items[0], Scope):
            raise LPathCompileError("a query must begin with a step")
        if pivot:
            pivoted = self._compile_pivot(path, items)
            if pivoted is not None:
                return pivoted
        first = items[0]
        plan = self._first_step_source(first)
        plan = self._apply_step_checks(plan, first, base=0, scope_base=None)
        plan = self._chain(plan, items[1:], ctx_base=0, next_free=ROW_WIDTH, scope_base=None)
        result_base = self._result_base(items)
        final = Distinct(plan, positions=(result_base + T, result_base + I))
        return CompiledQuery(final, result_base, f"LPath plan for {path}")

    # -- pivot join ordering ---------------------------------------------------

    _INVERSE_AXES = {
        Axis.CHILD: Axis.PARENT,
        Axis.PARENT: Axis.CHILD,
        Axis.DESCENDANT: Axis.ANCESTOR,
        Axis.ANCESTOR: Axis.DESCENDANT,
        Axis.DESCENDANT_OR_SELF: Axis.ANCESTOR_OR_SELF,
        Axis.ANCESTOR_OR_SELF: Axis.DESCENDANT_OR_SELF,
        Axis.IMMEDIATE_FOLLOWING: Axis.IMMEDIATE_PRECEDING,
        Axis.IMMEDIATE_PRECEDING: Axis.IMMEDIATE_FOLLOWING,
        Axis.FOLLOWING: Axis.PRECEDING,
        Axis.PRECEDING: Axis.FOLLOWING,
        Axis.FOLLOWING_OR_SELF: Axis.PRECEDING_OR_SELF,
        Axis.PRECEDING_OR_SELF: Axis.FOLLOWING_OR_SELF,
        Axis.IMMEDIATE_FOLLOWING_SIBLING: Axis.IMMEDIATE_PRECEDING_SIBLING,
        Axis.IMMEDIATE_PRECEDING_SIBLING: Axis.IMMEDIATE_FOLLOWING_SIBLING,
        Axis.FOLLOWING_SIBLING: Axis.PRECEDING_SIBLING,
        Axis.PRECEDING_SIBLING: Axis.FOLLOWING_SIBLING,
        Axis.FOLLOWING_SIBLING_OR_SELF: Axis.PRECEDING_SIBLING_OR_SELF,
        Axis.PRECEDING_SIBLING_OR_SELF: Axis.FOLLOWING_SIBLING_OR_SELF,
    }

    def _compile_pivot(self, path, items) -> Optional[CompiledQuery]:
        """Pivot plan for a plain chain, or ``None`` when inapplicable."""
        steps = []
        for item in items:
            if not isinstance(item, Step):
                return None
            if item.axis not in self._INVERSE_AXES and item is not items[0]:
                return None
            if item.left_aligned or item.right_aligned:
                return None
            if any(_mentions_position(p) for p in item.predicates):
                return None  # positions are relative to the original axis
            steps.append(item)
        if len(steps) < 2:
            return None
        if steps[0].axis not in (Axis.DESCENDANT, Axis.CHILD):
            return None
        clustered = self.clustered
        total = len(self.table)

        def frequency(step: Step) -> int:
            if step.test.is_wildcard:
                return total
            return clustered.count_eq((step.test.name,))

        pivot_index = min(range(len(steps)), key=lambda i: frequency(steps[i]))
        if pivot_index == 0:
            return None  # the default left-to-right plan is already optimal

        # Materialization order: pivot, then leftward, then rightward.
        order = [pivot_index] + list(range(pivot_index - 1, -1, -1)) + list(
            range(pivot_index + 1, len(steps))
        )
        base_of = {step_index: ROW_WIDTH * position
                   for position, step_index in enumerate(order)}

        pivot_step = steps[pivot_index]
        plan = self._first_step_source(
            Step(Axis.DESCENDANT, pivot_step.test, predicates=pivot_step.predicates)
        )
        plan = self._apply_step_checks(
            plan,
            Step(Axis.DESCENDANT, pivot_step.test, predicates=pivot_step.predicates),
            base=0,
            scope_base=None,
        )
        for step_index in order[1:]:
            if step_index < pivot_index:
                # Extend left: invert the axis of the step to our right.
                axis = self._INVERSE_AXES[steps[step_index + 1].axis]
                ctx = base_of[step_index + 1]
                original = steps[step_index]
            else:
                axis = steps[step_index].axis
                ctx = base_of[step_index - 1]
                original = steps[step_index]
            cand = base_of[step_index]
            exec_ = self._build_step_exec(
                Step(axis, original.test, predicates=original.predicates),
                ctx, cand, scope_base=None,
            )
            plan = IndexNestedLoopJoin(
                plan, exec_.matches, f"pivot {axis.value}::{original.test}"
            )
            if step_index == 0 and steps[0].axis is Axis.CHILD:
                root_pid = cand + P
                plan = Select(
                    plan, Func(lambda b, p=root_pid: b[p] == 0, "root step")
                )
        result_base = base_of[len(steps) - 1]
        final = Distinct(plan, positions=(result_base + T, result_base + I))
        return CompiledQuery(
            final, result_base,
            f"LPath pivot plan for {path} (pivot step {pivot_index + 1})",
        )

    # -- main pipeline -------------------------------------------------------

    def _chain(
        self,
        plan: Operator,
        items: Sequence,
        ctx_base: int,
        next_free: int,
        scope_base: Optional[int],
    ) -> Operator:
        for item in items:
            if isinstance(item, Scope):
                # The context node becomes the scope; its row is already in
                # the binding at ctx_base.
                return self._chain(
                    plan, list(item.body.items), ctx_base, next_free, scope_base=ctx_base
                )
            step = item
            if step.axis is Axis.SELF:
                plan = self._self_step(plan, step, ctx_base, scope_base)
                continue
            exec_ = self._build_step_exec(step, ctx_base, next_free, scope_base)
            plan = IndexNestedLoopJoin(plan, exec_.matches, exec_.description)
            ctx_base = next_free
            next_free += ROW_WIDTH
        return plan

    def _result_base(self, items: Sequence) -> int:
        """Binding offset of the result step (the last step, through scopes)."""
        base = -ROW_WIDTH
        stack = list(items)
        while stack:
            item = stack.pop(0)
            if isinstance(item, Scope):
                stack = list(item.body.items)
                continue
            if item.axis is not Axis.SELF:
                base += ROW_WIDTH
        if base < 0:
            raise LPathCompileError("query selects nothing")
        return base

    def _first_step_source(self, step: Step) -> Operator:
        if step.axis is Axis.DESCENDANT:
            root_only = False
        elif step.axis is Axis.CHILD:
            root_only = True
        else:
            raise LPathCompileError(
                f"a query cannot start with the {step.axis.value} axis"
            )
        seed = self._value_seed(step, root_only)
        if seed is not None:
            return seed
        if step.test.is_wildcard:
            if root_only:
                return Source(
                    lambda: (r for r in self.table.scan() if r[P] == 0 and _is_element_row(r)),
                    "roots",
                )
            return Source(
                lambda: (r for r in self.table.scan() if _is_element_row(r)),
                "all elements",
            )
        name = step.test.name
        if root_only:
            return Source(
                lambda: (r for r in self.clustered.scan_eq((name,)) if r[P] == 0),
                f"roots named {name}",
            )
        return Source(lambda: self.clustered.scan_eq((name,)), f"elements named {name}")

    def _value_seed(self, step: Step, root_only: bool) -> Optional[Operator]:
        """Drive the first step from the {value, tid, id} index when it has a
        direct ``[@attr = literal]`` predicate — the optimization behind the
        paper's fast high-selectivity value queries."""
        found = _find_attribute_equality(step.predicates)
        if found is None:
            return None
        attr_name, literal = found
        name_test = None if step.test.is_wildcard else step.test.name
        by_tid_id = self.by_tid_id
        by_value = self.by_value

        def rows():
            for attr_row in by_value.scan_eq((literal,)):
                if attr_row[N] != attr_name:
                    continue
                for element in by_tid_id.scan_eq((attr_row[T], attr_row[I])):
                    if not _is_element_row(element):
                        continue
                    if name_test is not None and element[N] != name_test:
                        continue
                    if root_only and element[P] != 0:
                        continue
                    yield element

        return Source(rows, f"value seed {attr_name}={literal!r}")

    def _apply_step_checks(
        self, plan: Operator, step: Step, base: int, scope_base: Optional[int]
    ) -> Operator:
        """Alignment and predicates for a step already materialized at ``base``."""
        checks = self._alignment_checks(step, base, scope_base)
        checks.extend(self._predicate_checks(step, base, base + ROW_WIDTH, scope_base))
        for check in checks:
            plan = Select(plan, Func(check, f"check on step@{base}"))
        return plan

    def _self_step(
        self, plan: Operator, step: Step, ctx_base: int, scope_base: Optional[int]
    ) -> Operator:
        checks: list[BindingCheck] = []
        if not step.test.is_wildcard:
            name = step.test.name
            position = ctx_base + N
            checks.append(lambda b, position=position, name=name: b[position] == name)
        checks.extend(self._alignment_checks(step, ctx_base, scope_base))
        checks.extend(
            self._predicate_checks(step, ctx_base, ctx_base + ROW_WIDTH, scope_base)
        )
        for check in checks:
            plan = Select(plan, Func(check, "self step"))
        return plan

    # -- step executables ---------------------------------------------------------

    def _build_step_exec(
        self,
        step: Step,
        ctx_base: int,
        cand_base: int,
        scope_base: Optional[int],
    ) -> _StepExec:
        probe, residuals = self._probe_and_residuals(step, ctx_base, cand_base, scope_base)
        residuals.extend(self._scope_checks(cand_base, scope_base))
        checks = self._alignment_checks(step, cand_base, scope_base)
        checks.extend(
            self._positional_and_other_predicates(step, ctx_base, cand_base, scope_base)
        )
        return _StepExec(
            probe, residuals, checks, f"{step.axis.value}::{step.test}"
        )

    def _probe_and_residuals(
        self,
        step: Step,
        ctx_base: int,
        cand_base: int,
        scope_base: Optional[int],
    ) -> tuple[RowProbe, list[BindingCheck]]:
        axis = step.axis
        test = step.test
        ct, cl, cr, cd, cid, cpid = (
            ctx_base + T, ctx_base + L, ctx_base + R,
            ctx_base + D, ctx_base + I, ctx_base + P,
        )
        xl, xr, xd, xid, xp, xn = (
            cand_base + L, cand_base + R, cand_base + D,
            cand_base + I, cand_base + P, cand_base + N,
        )
        residuals: list[BindingCheck] = []

        if axis is Axis.ATTRIBUTE:
            by_tid_id = self.by_tid_id
            probe: RowProbe = lambda b: by_tid_id.scan_eq((b[ct], b[cid]))
            if test.is_wildcard:
                residuals.append(lambda b: b[xn].startswith("@"))
            else:
                wanted = "@" + test.name
                residuals.append(lambda b, wanted=wanted: b[xn] == wanted)
            return probe, residuals

        if axis is not Axis.PARENT:
            # Value-driven probe: a step with a direct [@attr = literal]
            # predicate is answered from the {tid, value, id} index — the
            # optimization behind the paper's fast value-predicate queries.
            found = _find_attribute_equality(step.predicates)
            if found is not None:
                attr_name, literal = found
                by_value = self.table.index("idx_tid_value_id")
                by_tid_id = self.by_tid_id
                name_test = None if test.is_wildcard else test.name

                def probe(b, ct=ct, attr_name=attr_name, literal=literal,
                          by_value=by_value, by_tid_id=by_tid_id,
                          name_test=name_test):
                    for attr_row in by_value.scan_eq((b[ct], literal)):
                        if attr_row[N] != attr_name:
                            continue
                        for element in by_tid_id.scan_eq((b[ct], attr_row[I])):
                            if element[N].startswith("@"):
                                continue
                            if name_test is not None and element[N] != name_test:
                                continue
                            yield element

                residuals.extend(self._axis_conditions(axis, ctx_base, cand_base))
                return probe, residuals

        if axis is Axis.PARENT:
            by_tid_id = self.by_tid_id
            probe = lambda b: by_tid_id.scan_eq((b[ct], b[cpid]))
            residuals.append(self._element_or_name_check(test, xn))
            return probe, residuals

        if test.is_wildcard:
            # No leading-name index applies: scan the tree's rows and filter
            # with the full Table 2 conditions.
            by_tid_id = self.by_tid_id
            probe = lambda b: by_tid_id.scan_eq((b[ct],))
            residuals.append(lambda b: not b[xn].startswith("@"))
            residuals.extend(self._axis_conditions(axis, ctx_base, cand_base))
            return probe, residuals

        # Named test: clustered index (name, tid, left, ...) with a range on
        # `left` derived from the axis, plus residual label comparisons.
        name = test.name
        clustered = self.clustered
        scope_l = None if scope_base is None else scope_base + L
        scope_r = None if scope_base is None else scope_base + R

        if axis in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            probe = lambda b: clustered.scan_range(
                (name, b[ct]), low=b[cl], high=b[cr], include_high=False
            )
            if axis is Axis.CHILD:
                residuals.append(lambda b: b[xp] == b[cid])
            elif axis is Axis.DESCENDANT:
                residuals.append(lambda b: b[xr] <= b[cr] and b[xd] > b[cd])
            else:
                residuals.append(lambda b: b[xr] <= b[cr] and b[xd] >= b[cd])
        elif axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
            probe = lambda b: clustered.scan_range(
                (name, b[ct]),
                low=None if scope_l is None else b[scope_l],
                high=b[cl],
            )
            if axis is Axis.ANCESTOR:
                residuals.append(lambda b: b[xr] >= b[cr] and b[xd] < b[cd])
            else:
                residuals.append(lambda b: b[xr] >= b[cr] and b[xd] <= b[cd])
        elif axis is Axis.IMMEDIATE_FOLLOWING:
            probe = lambda b: clustered.scan_range((name, b[ct]), low=b[cr], high=b[cr])
        elif axis in (Axis.FOLLOWING, Axis.FOLLOWING_OR_SELF,
                      Axis.FOLLOWING_SIBLING_OR_SELF):
            base_probe = lambda b: clustered.scan_range(
                (name, b[ct]),
                low=b[cr],
                high=None if scope_r is None else b[scope_r],
                include_high=False,
            )
            if axis is Axis.FOLLOWING:
                probe = base_probe
            else:
                probe = _with_self(base_probe, ctx_base, name)
            if axis is Axis.FOLLOWING_SIBLING_OR_SELF:
                residuals.append(lambda b: b[xp] == b[cpid])
        elif axis in (Axis.PRECEDING_OR_SELF, Axis.PRECEDING_SIBLING_OR_SELF):
            base_probe = self._preceding_probe(name, ct, cl, scope_l, equality=False)
            probe = _with_self(base_probe, ctx_base, name)
            if axis is Axis.PRECEDING_OR_SELF:
                residuals.append(
                    lambda b: b[xr] <= b[cl] or b[xid] == b[cid]
                )
            else:
                residuals.append(
                    lambda b: b[xp] == b[cpid]
                    and (b[xr] <= b[cl] or b[xid] == b[cid])
                )
        elif axis is Axis.IMMEDIATE_PRECEDING:
            probe = self._preceding_probe(name, ct, cl, scope_l, equality=True)
            if self.reverse_index is None:
                residuals.append(lambda b: b[xr] == b[cl])
        elif axis is Axis.PRECEDING:
            probe = self._preceding_probe(name, ct, cl, scope_l, equality=False)
            residuals.append(lambda b: b[xr] <= b[cl])
        elif axis is Axis.IMMEDIATE_FOLLOWING_SIBLING:
            probe = lambda b: clustered.scan_range((name, b[ct]), low=b[cr], high=b[cr])
            residuals.append(lambda b: b[xp] == b[cpid])
        elif axis is Axis.FOLLOWING_SIBLING:
            probe = lambda b: clustered.scan_range((name, b[ct]), low=b[cr])
            residuals.append(lambda b: b[xp] == b[cpid])
        elif axis is Axis.IMMEDIATE_PRECEDING_SIBLING:
            probe = self._preceding_probe(name, ct, cl, scope_l, equality=True)
            residuals.append(lambda b: b[xp] == b[cpid])
            if self.reverse_index is None:
                residuals.append(lambda b: b[xr] == b[cl])
        elif axis is Axis.PRECEDING_SIBLING:
            probe = self._preceding_probe(name, ct, cl, scope_l, equality=False)
            residuals.append(lambda b: b[xp] == b[cpid] and b[xr] <= b[cl])
        else:  # pragma: no cover - SELF handled by caller
            raise LPathCompileError(f"unsupported axis {axis.value}")
        return probe, residuals

    def _preceding_probe(
        self,
        name: str,
        ct: int,
        cl: int,
        scope_l: Optional[int],
        equality: bool,
    ) -> RowProbe:
        """Probe for the preceding axes.

        The paper's physical design has no index leading on ``right``, so
        preceding probes range-scan ``left < c.left`` and filter on
        ``right`` — unless the ablation index {name, tid, right} exists, in
        which case immediate-preceding becomes an equality probe.
        """
        reverse = self.reverse_index
        if reverse is not None and equality:
            return lambda b: reverse.scan_range((name, b[ct]), low=b[cl], high=b[cl])
        clustered = self.clustered
        if scope_l is None:
            return lambda b: clustered.scan_range(
                (name, b[ct]), high=b[cl], include_high=False
            )
        return lambda b: clustered.scan_range(
            (name, b[ct]), low=b[scope_l], high=b[cl], include_high=False
        )

    def _element_or_name_check(self, test: NodeTest, name_position: int) -> BindingCheck:
        if test.is_wildcard:
            return lambda b: not b[name_position].startswith("@")
        name = test.name
        return lambda b, name=name: b[name_position] == name

    def _axis_conditions(self, axis: Axis, ctx_base: int, cand_base: int) -> list[BindingCheck]:
        """Full Table 2 comparisons as residuals (wildcard / fallback path)."""
        from .axes import CONDITIONS, OR_SELF_BASES

        base = OR_SELF_BASES.get(axis)
        if base is not None:
            base_checks = self._axis_conditions(base, ctx_base, cand_base)
            xid, cid = cand_base + I, ctx_base + I
            return [
                lambda b: b[xid] == b[cid] or all(check(b) for check in base_checks)
            ]

        positions = {"tid": T, "left": L, "right": R, "depth": D, "id": I, "pid": P}
        checks: list[BindingCheck] = []
        for condition in CONDITIONS[axis]:
            x_position = cand_base + positions[condition.column]
            c_position = ctx_base + positions[condition.context_column]
            op = condition.op
            if op == "=":
                checks.append(lambda b, x=x_position, c=c_position: b[x] == b[c])
            elif op == ">=":
                checks.append(lambda b, x=x_position, c=c_position: b[x] >= b[c])
            elif op == "<=":
                checks.append(lambda b, x=x_position, c=c_position: b[x] <= b[c])
            elif op == ">":
                checks.append(lambda b, x=x_position, c=c_position: b[x] > b[c])
            else:
                checks.append(lambda b, x=x_position, c=c_position: b[x] < b[c])
        return checks

    def _scope_checks(self, cand_base: int, scope_base: Optional[int]) -> list[BindingCheck]:
        if scope_base is None:
            return []
        xl, xr, xd = cand_base + L, cand_base + R, cand_base + D
        sl, sr, sd = scope_base + L, scope_base + R, scope_base + D
        return [
            lambda b: b[sl] <= b[xl] and b[xr] <= b[sr] and b[xd] >= b[sd]
        ]

    def _alignment_checks(
        self, step: Step, cand_base: int, scope_base: Optional[int]
    ) -> list[BindingCheck]:
        checks: list[BindingCheck] = []
        xl, xr, xt = cand_base + L, cand_base + R, cand_base + T
        if step.left_aligned:
            if scope_base is None:
                checks.append(lambda b: b[xl] == 1)
            else:
                sl = scope_base + L
                checks.append(lambda b: b[xl] == b[sl])
        if step.right_aligned:
            if scope_base is None:
                root_right = self.root_right
                checks.append(lambda b: b[xr] == root_right[b[xt]])
            else:
                sr = scope_base + R
                checks.append(lambda b: b[xr] == b[sr])
        return checks

    # -- predicates -----------------------------------------------------------------

    def _positional_and_other_predicates(
        self,
        step: Step,
        ctx_base: int,
        cand_base: int,
        scope_base: Optional[int],
    ) -> list[BindingCheck]:
        checks: list[BindingCheck] = []
        for index, predicate in enumerate(step.predicates):
            if _mentions_position(predicate):
                if index != 0:
                    raise LPathCompileError(
                        "positional predicates must come first on their step "
                        "(use the tree-walk evaluator for full XPath semantics)"
                    )
                checks.append(
                    self._compile_positional(predicate, step, ctx_base, cand_base)
                )
            else:
                checks.append(
                    self._compile_boolean(
                        predicate, cand_base, cand_base + ROW_WIDTH, scope_base
                    )
                )
        return checks

    def _predicate_checks(
        self,
        step: Step,
        base: int,
        next_free: int,
        scope_base: Optional[int],
    ) -> list[BindingCheck]:
        checks: list[BindingCheck] = []
        for predicate in step.predicates:
            if _mentions_position(predicate):
                raise LPathCompileError(
                    "positional predicates on the first step are not supported "
                    "by the relational backend"
                )
            checks.append(self._compile_boolean(predicate, base, next_free, scope_base))
        return checks

    def _compile_boolean(
        self,
        expr: PredicateExpr,
        ctx_base: int,
        next_free: int,
        scope_base: Optional[int],
    ) -> BindingCheck:
        if isinstance(expr, OrExpr):
            parts = [
                self._compile_boolean(part, ctx_base, next_free, scope_base)
                for part in expr.parts
            ]
            return lambda b: any(part(b) for part in parts)
        if isinstance(expr, AndExpr):
            parts = [
                self._compile_boolean(part, ctx_base, next_free, scope_base)
                for part in expr.parts
            ]
            return lambda b: all(part(b) for part in parts)
        if isinstance(expr, NotExpr):
            inner = self._compile_boolean(expr.part, ctx_base, next_free, scope_base)
            return lambda b: not inner(b)
        if isinstance(expr, PathExists):
            runner = self._compile_subpath(expr.path, ctx_base, next_free, scope_base)
            return lambda b: next(runner(b), None) is not None
        if isinstance(expr, Comparison):
            return self._compile_comparison(expr, ctx_base, next_free, scope_base)
        if isinstance(expr, FunctionCall):
            return self._compile_function_bool(expr, ctx_base)
        if isinstance(expr, Literal):
            value = bool(expr.value)
            return lambda b: value
        if isinstance(expr, Number):
            raise LPathCompileError(
                "bare numeric predicates are positional; unsupported here"
            )
        raise LPathCompileError(f"cannot compile predicate {expr!r}")

    def _compile_function_bool(self, call: FunctionCall, ctx_base: int) -> BindingCheck:
        if call.name == "true":
            return lambda b: True
        if call.name == "false":
            return lambda b: False
        raise LPathCompileError(
            f"function {call.name}() is not usable as a boolean here"
        )

    def _compile_subpath(
        self,
        path: Path,
        ctx_base: int,
        next_free: int,
        scope_base: Optional[int],
    ) -> Callable[[tuple], Iterable[tuple]]:
        """A lazy runner: binding -> iterator of extended bindings."""
        base = ctx_base
        free = next_free
        scope = scope_base
        items = list(path.items)
        index = 0
        step_plan: list[tuple[str, object]] = []
        while index < len(items):
            item = items[index]
            if isinstance(item, Scope):
                if index != len(items) - 1:
                    raise LPathCompileError("steps after a scope are not allowed")
                scope = base
                items = items[:index] + list(item.body.items)
                step_plan.append(("scope", base))
                continue
            if item.axis is Axis.SELF:
                checks: list[BindingCheck] = []
                if not item.test.is_wildcard:
                    name = item.test.name
                    position = base + N
                    checks.append(lambda b, p=position, n=name: b[p] == n)
                checks.extend(self._alignment_checks(item, base, scope))
                for pred in item.predicates:
                    if _mentions_position(pred):
                        raise LPathCompileError(
                            "positional predicates on self steps are unsupported"
                        )
                    checks.append(self._compile_boolean(pred, base, free, scope))
                step_plan.append(("filter", checks))
                index += 1
                continue
            exec_ = self._build_step_exec(item, base, free, scope)
            step_plan.append(("join", exec_))
            base = free
            free += ROW_WIDTH
            index += 1

        def run(binding: tuple, plan=tuple(step_plan)) -> Iterable[tuple]:
            return _run_plan(binding, plan, 0)

        return run

    # -- comparisons ---------------------------------------------------------------

    def _compile_comparison(
        self,
        expr: Comparison,
        ctx_base: int,
        next_free: int,
        scope_base: Optional[int],
    ) -> BindingCheck:
        left, op, right = expr.left, expr.op, expr.right
        # name() comparisons: a residual on the context row's name column.
        if isinstance(left, FunctionCall) and left.name == "name" and isinstance(right, (Literal, Number)):
            wanted = right.value if isinstance(right, Literal) else str(right.value)
            position = ctx_base + N
            if op == "=":
                return lambda b: b[position] == wanted
            if op == "!=":
                return lambda b: b[position] != wanted
            raise LPathCompileError("name() only supports = and != comparisons")
        # count(path) op number.
        if isinstance(left, FunctionCall) and left.name == "count":
            return self._compile_count(left, op, right, ctx_base, next_free, scope_base)
        if isinstance(right, FunctionCall) and right.name == "count":
            flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}
            return self._compile_count(
                right, flipped[op], left, ctx_base, next_free, scope_base
            )
        # path op literal/number (and the mirrored form).
        if isinstance(left, PathExists) and isinstance(right, (Literal, Number)):
            return self._compile_value_comparison(
                left.path, op, right, ctx_base, next_free, scope_base
            )
        if isinstance(right, PathExists) and isinstance(left, (Literal, Number)):
            flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}
            return self._compile_value_comparison(
                right.path, flipped[op], left, ctx_base, next_free, scope_base
            )
        if isinstance(left, (Literal, Number)) and isinstance(right, (Literal, Number)):
            outcome = _static_compare(left, op, right)
            return lambda b: outcome
        raise LPathCompileError(
            f"comparison {expr} is not supported by the relational backend"
        )

    def _compile_count(
        self,
        call: FunctionCall,
        op: str,
        other: PredicateExpr,
        ctx_base: int,
        next_free: int,
        scope_base: Optional[int],
    ) -> BindingCheck:
        argument = call.args[0]
        if not isinstance(argument, PathExists):
            raise LPathCompileError("count() takes a path argument")
        if not isinstance(other, (Number, Literal)):
            raise LPathCompileError("count() comparisons need a numeric operand")
        try:
            target = float(other.value)
        except (TypeError, ValueError):
            raise LPathCompileError("count() comparisons need a numeric operand")
        runner = self._compile_subpath(argument.path, ctx_base, next_free, scope_base)

        def check(binding: tuple) -> bool:
            seen = set()
            for extended in runner(binding):
                row = extended[-ROW_WIDTH:]
                seen.add((row[T], row[I], row[N]))
            return _numeric_compare(float(len(seen)), op, target)

        return check

    def _compile_value_comparison(
        self,
        path: Path,
        op: str,
        literal,
        ctx_base: int,
        next_free: int,
        scope_base: Optional[int],
    ) -> BindingCheck:
        runner = self._compile_subpath(path, ctx_base, next_free, scope_base)
        clustered = self.clustered
        wanted = literal.value

        def string_value_of(row: tuple) -> str:
            if row[N].startswith("@"):
                return row[V] if row[V] is not None else ""
            words = [
                r[V]
                for r in clustered.scan_range(
                    ("@lex", row[T]), low=row[L], high=row[R], include_high=False
                )
                if r[R] <= row[R] and r[V] is not None
            ]
            return " ".join(words)

        numeric = isinstance(literal, Number) or op in ("<", "<=", ">", ">=")

        def check(binding: tuple) -> bool:
            for extended in runner(binding):
                row = extended[-ROW_WIDTH:]
                value = string_value_of(row)
                if numeric:
                    try:
                        number = float(value.strip())
                    except ValueError:
                        continue
                    target = float(wanted) if not isinstance(wanted, str) else _as_float(wanted)
                    if target is None:
                        continue
                    if _numeric_compare(number, op, target):
                        return True
                else:
                    if (value == wanted) == (op == "="):
                        return True
            return False

        return check

    # -- positional predicates --------------------------------------------------------

    def _compile_positional(
        self,
        predicate: PredicateExpr,
        step: Step,
        ctx_base: int,
        cand_base: int,
    ) -> BindingCheck:
        if step.axis not in _POSITIONAL_AXES:
            raise LPathCompileError(
                f"positional predicates on the {step.axis.value} axis are not "
                "supported by the relational backend"
            )
        if not isinstance(predicate, Comparison):
            raise LPathCompileError("unsupported positional predicate form")
        left, op, right = predicate.left, predicate.op, predicate.right
        if not (isinstance(left, FunctionCall) and left.name == "position"):
            raise LPathCompileError("positional predicates must test position()")
        use_last = isinstance(right, FunctionCall) and right.name == "last"
        if not use_last and not isinstance(right, Number):
            raise LPathCompileError("position() must be compared to a number or last()")
        target = None if use_last else right.value
        by_tid_id = self.by_tid_id
        axis = step.axis
        test = step.test
        name_matches = (
            (lambda row: not row[N].startswith("@"))
            if test.is_wildcard
            else (lambda row, n=test.name: row[N] == n)
        )

        def check(binding: tuple) -> bool:
            candidate = binding[cand_base:cand_base + ROW_WIDTH]
            context = binding[ctx_base:ctx_base + ROW_WIDTH]
            siblings = [
                row
                for row in by_tid_id.scan_eq((candidate[T],))
                if row[P] == candidate[P] and name_matches(row)
            ]
            siblings.sort(key=lambda row: row[L])
            if axis is Axis.CHILD:
                ordered = siblings
            elif axis in (Axis.FOLLOWING_SIBLING, Axis.IMMEDIATE_FOLLOWING_SIBLING):
                ordered = [row for row in siblings if row[L] >= context[R]]
            else:
                ordered = [row for row in siblings if row[R] <= context[L]]
                ordered.reverse()
            position = None
            for rank, row in enumerate(ordered, start=1):
                if row[I] == candidate[I]:
                    position = rank
                    break
            if position is None:
                return False
            wanted = float(len(ordered)) if use_last else float(target)
            return _numeric_compare(float(position), op, wanted)

        return check


def _with_self(base_probe: RowProbe, ctx_base: int, name: str) -> RowProbe:
    """Wrap a probe so it also yields the context row when it passes the
    name test (the or-self axes)."""

    def probe(binding: tuple) -> Iterable[tuple]:
        row = binding[ctx_base:ctx_base + ROW_WIDTH]
        if row[N] == name:
            yield row
        yield from base_probe(binding)

    return probe


def _run_plan(binding: tuple, plan: tuple, index: int) -> Iterable[tuple]:
    """Lazily run a compiled sub-path plan from ``binding``."""
    if index == len(plan):
        yield binding
        return
    kind, payload = plan[index]
    if kind == "scope":
        yield from _run_plan(binding, plan, index + 1)
        return
    if kind == "filter":
        if all(check(binding) for check in payload):
            yield from _run_plan(binding, plan, index + 1)
        return
    for row in payload.matches(binding):
        yield from _run_plan(binding + row, plan, index + 1)


def _find_attribute_equality(
    predicates: Sequence[PredicateExpr],
) -> Optional[tuple[str, str]]:
    """Find a direct ``[@attr = literal]`` among a step's predicates."""
    stack = list(predicates)
    while stack:
        expr = stack.pop(0)
        if isinstance(expr, AndExpr):
            stack = list(expr.parts) + stack
            continue
        if not isinstance(expr, Comparison) or expr.op != "=":
            continue
        for path_side, other in ((expr.left, expr.right), (expr.right, expr.left)):
            if not isinstance(path_side, PathExists):
                continue
            if not isinstance(other, (Literal, Number)):
                continue
            items = path_side.path.items
            if len(items) != 1 or not isinstance(items[0], Step):
                continue
            step = items[0]
            if step.axis is not Axis.ATTRIBUTE or step.test.is_wildcard or step.predicates:
                continue
            if isinstance(other, Number):
                value = other.value
                text = str(int(value)) if value == int(value) else str(value)
            else:
                text = other.value
            return "@" + step.test.name, text
    return None


def _mentions_position(expr: PredicateExpr) -> bool:
    if isinstance(expr, (OrExpr, AndExpr)):
        return any(_mentions_position(part) for part in expr.parts)
    if isinstance(expr, NotExpr):
        return _mentions_position(expr.part)
    if isinstance(expr, Comparison):
        return _mentions_position(expr.left) or _mentions_position(expr.right)
    if isinstance(expr, FunctionCall):
        return expr.name in ("position", "last")
    return False


def _numeric_compare(left: float, op: str, right: float) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _static_compare(left, op: str, right) -> bool:
    left_value = left.value
    right_value = right.value
    if isinstance(left, Number) or isinstance(right, Number):
        left_number = _as_float(left_value)
        right_number = _as_float(right_value)
        if left_number is None or right_number is None:
            return op == "!="
        return _numeric_compare(left_number, op, right_number)
    if op == "=":
        return left_value == right_value
    if op == "!=":
        return left_value != right_value
    left_number, right_number = _as_float(left_value), _as_float(right_value)
    if left_number is None or right_number is None:
        return False
    return _numeric_compare(left_number, op, right_number)


def _as_float(value) -> Optional[float]:
    try:
        return float(str(value).strip())
    except (TypeError, ValueError):
        return None
