"""Compile LPath queries through the shared logical-plan IR.

Following Section 4 of the paper, every LPath axis becomes a join whose
condition is the Table 2 label comparison; joins are evaluated index-
nested-loop style against the paper's physical design (clustered
``{name, tid, left, ...}`` plus the ``{tid, value, id}``, ``{value, tid,
id}`` and ``{tid, id, ...}`` secondary indexes).

Since the unified-IR refactor all of the step/predicate machinery lives in
:mod:`repro.plan` — :mod:`~repro.plan.lower` builds the logical plan with
the Definition-4.1 axis semantics of
:class:`~repro.plan.schemes.LPathScheme`, :mod:`~repro.plan.optimizer`
runs predicate pushdown and (with ``pivot=True``) selectivity-driven join
reordering, and :mod:`~repro.plan.executor` interprets the result.  This
module only keeps the engine-facing façade.

The :mod:`repro.plan` imports are deliberately lazy: that package lowers
*this* package's AST, so importing it at module scope would be circular.
"""

from __future__ import annotations

from typing import Iterable, Union

from collections import Counter

from ..plan.ir import Aggregate, Limit, PlanNode, ROW_WIDTH, render
from ..relational.operators import Operator
from ..relational.table import Table
from .ast import Path
from .errors import LPathCompileError

Query = Union[str, Path]


class CompiledQuery:
    """A compiled main pipeline ready to execute.

    ``limit`` carries a logical :class:`~repro.plan.ir.Limit` (top-k in
    output order) the physical plan was compiled under; ``agg`` carries
    an :class:`~repro.plan.ir.Aggregate` operation.  Both are recorded
    here (the physical executors reject post-output operators) and
    applied by :meth:`rows` / :meth:`aggregate`."""

    def __init__(
        self,
        plan: Operator,
        result_base: int,
        description: str,
        logical: PlanNode = None,
        limit: int = None,
        agg: str = None,
    ) -> None:
        self.plan = plan
        self.result_base = result_base
        self.description = description
        self.logical = logical
        self.limit = limit
        self.agg = agg

    def rows(self) -> Iterable[tuple]:
        """Distinct ``(tid, id)`` pairs of the result step, sorted —
        truncated to the top-k when the plan carries a limit (the
        columnar executor terminates early instead of truncating)."""
        if self.limit is not None:
            limited = getattr(self.plan, "rows_limited", None)
            if limited is not None:
                return limited(self.limit)
            return sorted(self.plan)[: self.limit]
        return sorted(self.plan)

    def count(self) -> int:
        if self.limit is not None:
            return len(self.rows())
        fast = getattr(self.plan, "count_rows", None)
        if fast is not None:
            # The columnar pipeline counts without materializing a
            # result list (partition bounds for bare scans, distinct
            # key cardinality otherwise).
            return fast()
        total = 0
        for _ in self.plan:
            total += 1
        return total

    def aggregate(self) -> dict:
        """Evaluate the plan's aggregate: ``{"count": n}`` for plain
        counts, ``{group: n}`` for the grouped forms (the group value is
        the third component of the extended distinct key)."""
        if self.agg is None:
            raise LPathCompileError("plan carries no aggregate")
        if self.agg == "count":
            return {"count": self.count()}
        counts = Counter()
        for key in self.plan:
            counts[key[2]] += 1
        return dict(counts)

    def explain(self) -> str:
        """The logical IR (uniform across dialects) plus the physical plan."""
        parts = [self.description]
        if self.logical is not None:
            parts.append("logical plan:\n" + render(self.logical, indent=2))
        parts.append("physical plan:\n" + self.plan.explain(indent=2))
        return "\n".join(parts)


EXECUTORS = ("volcano", "columnar")


class PlanCompiler:
    """Compiles parsed LPath queries against one loaded label relation.

    Subclasses (the XPath baseline) override :attr:`dialect`,
    :attr:`result_class` and the scheme; the compile pipeline itself —
    parse → lower (pivoted or not) → optimize → physical-compile — exists
    only here.  Two physical backends serve the same optimized IR: the
    tuple-at-a-time Volcano interpreter (:mod:`repro.plan.executor`, needs
    the row ``table``) and the batch columnar executor
    (:mod:`repro.columnar`, built lazily from the table's rows, or handed
    a prebuilt ``column_store`` for row-less engines)."""

    dialect = "LPath"
    result_class = CompiledQuery

    def __init__(
        self,
        table: Table = None,
        root_right: dict[int, int] = None,
        scheme=None,
        column_store=None,
    ) -> None:
        from ..plan.executor import Runtime
        from ..plan.lower import Lowerer
        from ..plan.schemes import Catalog, LPathScheme

        if table is None and column_store is None:
            raise ValueError("PlanCompiler needs a row table or a column store")
        self.table = table
        self.column_store = column_store
        self.root_right = root_right
        self.scheme = scheme if scheme is not None else LPathScheme()
        if table is not None:
            self.catalog = Catalog(table)
        else:
            from ..columnar import ColumnarCatalog

            self.catalog = ColumnarCatalog(column_store)
        self.lowerer = Lowerer(self.scheme, self.catalog, self.dialect)
        self.runtime = (
            Runtime(table, self.scheme, root_right) if table is not None else None
        )
        self._columnar_runtime = None

    @property
    def columnar_runtime(self):
        """The columnar physical context, built on first use."""
        if self._columnar_runtime is None:
            from ..columnar import ColumnStore, ColumnarRuntime

            store = self.column_store
            if store is None:
                store = ColumnStore.from_rows(
                    self.table.scan(), column_names=self.table.schema.columns[:8]
                )
                self.column_store = store
            index_columns = {}
            if self.table is not None:
                index_columns = {
                    name: index.columns for name, index in self.table.indexes.items()
                }
            self._columnar_runtime = ColumnarRuntime(
                store, self.scheme, self.root_right, index_columns
            )
        return self._columnar_runtime

    def compile(
        self, query: Query, pivot: bool = False, executor: str = "volcano",
        limit: int = None, agg: str = None,
    ) -> CompiledQuery:
        """Compile a query; ``pivot=True`` enables selectivity-driven join
        ordering: when the query is a plain step chain, the join starts at
        the step with the rarest tag and extends leftward through inverted
        axes (and downward-only ``exists`` predicates pivot the same way).
        An optimization beyond the paper (see DESIGN.md ablations).

        ``executor`` picks the physical backend for the optimized IR:
        ``"volcano"`` (tuple-at-a-time interpreter) or ``"columnar"``
        (batch execution over parallel arrays).  ``limit`` compiles a
        top-k plan; ``agg`` an aggregate plan (mutually exclusive)."""
        from ..plan.lower import lower_and_optimize

        root, lowered = lower_and_optimize(
            self.lowerer, query, pivot, executor, limit=limit, agg=agg
        )
        return self.compile_physical(root, lowered, executor)

    def compile_physical(
        self, root: PlanNode, lowered, executor: str = "volcano"
    ) -> CompiledQuery:
        """Compile an already optimized logical plan against *this*
        relation.  Split out of :meth:`compile` so a segmented engine can
        lower and optimize a query once and physical-compile it against
        every segment (:mod:`repro.plan.segmented`).

        A ``Limit``/``Aggregate`` wrapper is peeled off here: the
        physical executors end their pipelines at Distinct/Project, so
        the wrapper becomes an attribute of the compiled query (applied
        in :meth:`CompiledQuery.rows` / :meth:`CompiledQuery.aggregate`)
        while ``explain()`` still renders it from the logical root."""
        inner, limit, agg = root, None, None
        if isinstance(inner, Limit):
            limit, inner = inner.count, inner.input
        elif isinstance(inner, Aggregate):
            agg, inner = inner.op, inner.input
        if executor == "columnar":
            from ..columnar import compile_plan as columnar_compile

            physical = columnar_compile(inner, self.columnar_runtime)
        elif executor == "volcano":
            if self.runtime is None:
                raise LPathCompileError(
                    "this engine has no row storage; use executor='columnar'"
                )
            from ..plan.executor import compile_plan

            physical = compile_plan(inner, self.runtime)
        else:
            raise LPathCompileError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        return self.result_class(
            physical, lowered.result_slot * ROW_WIDTH, lowered.description,
            root, limit=limit, agg=agg,
        )
