"""Abstract syntax for LPath queries (Figure 4's grammar plus XPath 1.0 core).

A query is a :class:`Path`: a sequence of :class:`Step` and :class:`Scope`
items.  Scoping ``HP { RLP }`` is represented by a trailing :class:`Scope`
item whose body is itself a :class:`Path` — per the paper's grammar, braces
always close at the end of a (sub)path, so scopes nest but never resume.

Predicates are boolean expressions over relative paths, comparisons and the
core function library (``position``, ``last``, ``count``, ``name``,
``not``...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .axes import Axis

WILDCARD = "_"


# -- predicate expressions -----------------------------------------------------


class PredicateExpr:
    """Base class for predicate expressions."""


@dataclass(frozen=True)
class OrExpr(PredicateExpr):
    """Disjunction."""

    parts: tuple[PredicateExpr, ...]

    def __str__(self) -> str:
        return " or ".join(str(part) for part in self.parts)


@dataclass(frozen=True)
class AndExpr(PredicateExpr):
    """Conjunction."""

    parts: tuple[PredicateExpr, ...]

    def __str__(self) -> str:
        return " and ".join(str(part) for part in self.parts)


@dataclass(frozen=True)
class NotExpr(PredicateExpr):
    """``not(expr)``."""

    part: PredicateExpr

    def __str__(self) -> str:
        return f"not({self.part})"


@dataclass(frozen=True)
class PathExists(PredicateExpr):
    """A relative path used as a boolean: true iff it selects some node."""

    path: "Path"

    def __str__(self) -> str:
        return str(self.path)


@dataclass(frozen=True)
class Literal(PredicateExpr):
    """A string literal (bare words in comparisons are string literals)."""

    value: str

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Number(PredicateExpr):
    """A numeric literal."""

    value: float

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True)
class FunctionCall(PredicateExpr):
    """A core-library function call: position(), last(), count(path), name()."""

    name: str
    args: tuple[PredicateExpr, ...] = ()

    def __str__(self) -> str:
        body = ", ".join(str(arg) for arg in self.args)
        return f"{self.name}({body})"


@dataclass(frozen=True)
class Comparison(PredicateExpr):
    """``left <op> right`` with XPath existential semantics for paths."""

    left: PredicateExpr
    op: str
    right: PredicateExpr

    def __str__(self) -> str:
        return f"{self.left}{self.op}{self.right}"


# -- steps and paths -------------------------------------------------------------


@dataclass(frozen=True)
class NodeTest:
    """What a step matches: a tag name, an attribute name, or the wildcard."""

    name: str
    is_attribute: bool = False

    @property
    def is_wildcard(self) -> bool:
        return self.name == WILDCARD

    def __str__(self) -> str:
        return ("@" if self.is_attribute else "") + self.name


@dataclass(frozen=True)
class Step:
    """One location step: axis, alignment, node test and predicates."""

    axis: Axis
    test: NodeTest
    left_aligned: bool = False
    right_aligned: bool = False
    predicates: tuple[PredicateExpr, ...] = ()

    def __str__(self) -> str:
        from .unparse import step_to_string  # local import to avoid a cycle

        return step_to_string(self)


@dataclass(frozen=True)
class Scope:
    """``{ body }`` — all steps in ``body`` stay within the scope node's subtree."""

    body: "Path"

    def __str__(self) -> str:
        return "{" + str(self.body) + "}"


PathItem = Union[Step, Scope]


@dataclass(frozen=True)
class Path:
    """A (possibly absolute) sequence of steps ending in at most one scope."""

    items: tuple[PathItem, ...]
    absolute: bool = False

    @property
    def steps(self) -> tuple[Step, ...]:
        """The head-path steps (excluding any trailing scope)."""
        return tuple(item for item in self.items if isinstance(item, Step))

    @property
    def scope(self) -> Optional[Scope]:
        """The trailing scope, if present."""
        for item in self.items:
            if isinstance(item, Scope):
                return item
        return None

    def last_step(self) -> Step:
        """The step whose matches are the query result (recursing into scopes)."""
        if not self.items:
            raise ValueError("empty path has no result step")
        last = self.items[-1]
        if isinstance(last, Scope):
            return last.body.last_step()
        return last

    def __str__(self) -> str:
        from .unparse import path_to_string

        return path_to_string(self)
