"""Tokenizer for LPath queries.

The main lexical subtlety is that Penn Treebank tag names contain ``-``
(``-NONE-``, ``NP-SBJ``, ``ADVP-LOC-CLR``) while ``->`` and ``-->`` are
axes.  The lexer uses maximal-munch with lookahead: inside a name, ``-`` is
a name character unless it begins ``->`` or ``-->``.  Genuinely ambiguous
tags (``PRP$``, punctuation tags like ``.``) can be written as quoted names
``'PRP$'``.

``<=`` is tokenized as the immediate-preceding-sibling axis; the parser
reinterprets it as a comparison operator when the left operand cannot start
a path continuation (e.g. ``position()<=3``).
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Optional

from .axes import ARROWS, Axis
from .errors import LPathSyntaxError


class Token(NamedTuple):
    """A lexical token: kind, surface text, axis payload, source offset."""

    kind: str
    text: str
    axis: Optional[Axis]
    position: int


# Token kinds.
DSLASH = "DSLASH"          # //
SLASH = "SLASH"            # /
BACKSLASH = "BACKSLASH"    # \
ARROW = "ARROW"            # ->  -->  <-  <--  =>  ==>  <=  <==
DOT = "DOT"                # .
DDOT = "DDOT"              # ..
AT = "AT"                  # @
LBRACKET, RBRACKET = "LBRACKET", "RBRACKET"
LBRACE, RBRACE = "LBRACE", "RBRACE"
LPAREN, RPAREN = "LPAREN", "RPAREN"
CARET, DOLLAR = "CARET", "DOLLAR"
COLONCOLON = "COLONCOLON"  # ::
COMMA = "COMMA"
OP = "OP"                  # =  !=  <  >  >=
NAME = "NAME"
STRING = "STRING"          # quoted name or literal
EOF = "EOF"

_SIMPLE = {
    "[": LBRACKET,
    "]": RBRACKET,
    "{": LBRACE,
    "}": RBRACE,
    "(": LPAREN,
    ")": RPAREN,
    "^": CARET,
    "$": DOLLAR,
    ",": COMMA,
}


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in "_-"


def _name_boundary(text: str, index: int) -> bool:
    """True when the ``-`` at ``index`` starts an arrow rather than a name."""
    return text.startswith("->", index) or text.startswith("-->", index)


def tokenize(query: str) -> list[Token]:
    """Tokenize a full query; raises :class:`LPathSyntaxError`."""
    return list(_tokens(query))


def _tokens(query: str) -> Iterator[Token]:
    index, length = 0, len(query)
    while index < length:
        char = query[index]
        if char.isspace():
            index += 1
            continue
        # Arrows (longest first, from the shared table).
        arrow = _match_arrow(query, index)
        if arrow is not None:
            text, axis = arrow
            yield Token(ARROW, text, axis, index)
            index += len(text)
            continue
        if query.startswith("//", index):
            yield Token(DSLASH, "//", None, index)
            index += 2
            continue
        if char == "/":
            yield Token(SLASH, "/", None, index)
            index += 1
            continue
        if char == "\\":
            yield Token(BACKSLASH, "\\", None, index)
            index += 1
            continue
        if query.startswith("::", index):
            yield Token(COLONCOLON, "::", None, index)
            index += 2
            continue
        if query.startswith("..", index):
            yield Token(DDOT, "..", None, index)
            index += 2
            continue
        if char == ".":
            yield Token(DOT, ".", None, index)
            index += 1
            continue
        if char == "@":
            yield Token(AT, "@", None, index)
            index += 1
            continue
        if char in _SIMPLE:
            yield Token(_SIMPLE[char], char, None, index)
            index += 1
            continue
        if query.startswith("!=", index):
            yield Token(OP, "!=", None, index)
            index += 2
            continue
        if query.startswith(">=", index):
            yield Token(OP, ">=", None, index)
            index += 2
            continue
        if char in "=<>":
            yield Token(OP, char, None, index)
            index += 1
            continue
        if char in "'\"":
            text, advance = _read_string(query, index)
            yield Token(STRING, text, None, index)
            index += advance
            continue
        if _is_name_char(char) and not (char == "-" and _name_boundary(query, index)):
            text, advance = _read_name(query, index)
            yield Token(NAME, text, None, index)
            index += advance
            continue
        raise LPathSyntaxError(f"unexpected character {char!r}", query, index)
    yield Token(EOF, "", None, length)


def _match_arrow(query: str, index: int) -> Optional[tuple[str, Axis]]:
    for text, axis in ARROWS:
        if query.startswith(text, index):
            return text, axis
    return None


def _read_string(query: str, index: int) -> tuple[str, int]:
    """Read a quoted string; a doubled quote escapes itself (``'o''clock'``)."""
    quote = query[index]
    parts: list[str] = []
    end = index + 1
    while end < len(query):
        char = query[end]
        if char == quote:
            if end + 1 < len(query) and query[end + 1] == quote:
                parts.append(quote)
                end += 2
                continue
            return "".join(parts), end - index + 1
        parts.append(char)
        end += 1
    raise LPathSyntaxError("unterminated string literal", query, index)


def _read_name(query: str, index: int) -> tuple[str, int]:
    end = index
    while end < len(query) and _is_name_char(query[end]):
        if query[end] == "-" and _name_boundary(query, end):
            break
        end += 1
    return query[index:end], end - index
