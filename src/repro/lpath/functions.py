"""The LPath core function library.

The paper keeps XPath's function library (footnote 1); the subset needed by
linguistic queries and the XPath-rewrite comparisons is implemented here:
``position``, ``last``, ``count``, ``name``, ``true``, ``false`` (plus
``not``, which the parser treats as a boolean connective).
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from .ast import FunctionCall


class FunctionSpec(NamedTuple):
    """Name, arity bounds, and result kind of a library function."""

    name: str
    min_args: int
    max_args: int
    result: str  # "number" | "string" | "boolean"


FUNCTIONS: dict[str, FunctionSpec] = {
    spec.name: spec
    for spec in (
        FunctionSpec("position", 0, 0, "number"),
        FunctionSpec("last", 0, 0, "number"),
        FunctionSpec("count", 1, 1, "number"),
        FunctionSpec("name", 0, 0, "string"),
        FunctionSpec("true", 0, 0, "boolean"),
        FunctionSpec("false", 0, 0, "boolean"),
    )
}


def validate_call(call: FunctionCall) -> Optional[str]:
    """An error message when the call is unknown or has bad arity, else None."""
    spec = FUNCTIONS.get(call.name)
    if spec is None:
        known = ", ".join(sorted(FUNCTIONS))
        return f"unknown function {call.name!r} (library: {known}, plus not(...))"
    if not (spec.min_args <= len(call.args) <= spec.max_args):
        if spec.min_args == spec.max_args:
            want = str(spec.min_args)
        else:
            want = f"{spec.min_args}..{spec.max_args}"
        return f"{call.name}() takes {want} argument(s), got {len(call.args)}"
    return None
