"""The LPath labeling scheme (Definition 4.1).

Every node of a linguistic tree is assigned a tuple
``(left, right, depth, id, pid, name, value)``:

* leaves tile the interval line: the leftmost leaf starts at 1, each leaf
  spans ``[left, left+1)``, and consecutive leaves *share a boundary* —
  this shared boundary is what makes the immediate-following axis a simple
  equality test ``x.left == y.right`` (the adjacency property);
* a non-terminal spans from its first to its last leaf descendant
  (containment property);
* ``depth`` disambiguates unary chains, whose nodes share spans;
* ``id``/``pid`` expedite the child/parent and sibling axes;
* attributes are extra rows sharing the element's positional fields, with
  ``name`` prefixed by ``@`` and the attribute value in ``value``.

Labels for a whole corpus form the relation
``node(tid, left, right, depth, id, pid, name, value)`` stored in the
relational engine (Section 5's schema).
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Optional

from ..tree.node import Tree, TreeNode

ATTRIBUTE_PREFIX = "@"

#: Column order of the label relation, matching the paper's Section 5 schema.
COLUMNS = ("tid", "left", "right", "depth", "id", "pid", "name", "value")


class Label(NamedTuple):
    """One row of the label relation."""

    tid: int
    left: int
    right: int
    depth: int
    id: int
    pid: int
    name: str
    value: Optional[str]

    @property
    def is_attribute(self) -> bool:
        """True for attribute rows (``name`` starts with ``@``)."""
        return self.name.startswith(ATTRIBUTE_PREFIX)


_TID, _RIGHT = COLUMNS.index("tid"), COLUMNS.index("right")
_PID, _NAME = COLUMNS.index("pid"), COLUMNS.index("name")


def is_root_row(row) -> bool:
    """True for the element row of a tree root (``pid == 0``).

    Works on :class:`Label` instances and plain tuples in ``COLUMNS``
    order — the scheme's own notion of what a root row looks like, so
    engines rebuilding state from raw label rows need not poke at tuple
    positions themselves.
    """
    return row[_PID] == 0 and not row[_NAME].startswith(ATTRIBUTE_PREFIX)


def root_spans(rows: Iterable) -> dict[int, int]:
    """``{tid: root.right}`` for every root row in ``rows`` — the spans the
    engine needs to answer right-edge alignment (``$``) outside a scope."""
    return {row[_TID]: row[_RIGHT] for row in rows if is_root_row(row)}


def label_node(node: TreeNode, tid: int) -> Label:
    """The element row for one (already indexed) tree node."""
    return Label(
        tid=tid,
        left=node.left,
        right=node.right,
        depth=node.depth,
        id=node.node_id,
        pid=node.parent.node_id if node.parent is not None else 0,
        name=node.label,
        value=None,
    )


def attribute_labels(node: TreeNode, tid: int) -> Iterator[Label]:
    """Attribute rows for one node (Definition 4.1, items 8-9)."""
    pid = node.parent.node_id if node.parent is not None else 0
    for attr_name in sorted(node.attributes):
        yield Label(
            tid=tid,
            left=node.left,
            right=node.right,
            depth=node.depth,
            id=node.node_id,
            pid=pid,
            name=ATTRIBUTE_PREFIX + attr_name,
            value=node.attributes[attr_name],
        )


def label_tree(tree: Tree) -> list[Label]:
    """All rows (element + attribute) for one tree, in document order."""
    rows: list[Label] = []
    for node in tree.nodes:
        rows.append(label_node(node, tree.tid))
        rows.extend(attribute_labels(node, tree.tid))
    return rows


def label_corpus(trees: Iterable[Tree]) -> Iterator[Label]:
    """Rows for a whole corpus; trees keep their own ``tid``."""
    for tree in trees:
        yield from label_tree(tree)
