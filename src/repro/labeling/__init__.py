"""Labeling schemes: the LPath scheme (Definition 4.1) and the XPath baseline."""

from . import predicates, xpath_scheme
from .lpath_scheme import (
    ATTRIBUTE_PREFIX,
    COLUMNS,
    Label,
    attribute_labels,
    is_root_row,
    label_corpus,
    label_node,
    label_tree,
    root_spans,
)

__all__ = [
    "ATTRIBUTE_PREFIX",
    "COLUMNS",
    "Label",
    "attribute_labels",
    "is_root_row",
    "label_corpus",
    "label_node",
    "label_tree",
    "predicates",
    "root_spans",
    "xpath_scheme",
]
