"""Labeling schemes: the LPath scheme (Definition 4.1) and the XPath baseline."""

from . import predicates, xpath_scheme
from .lpath_scheme import (
    ATTRIBUTE_PREFIX,
    COLUMNS,
    Label,
    attribute_labels,
    label_corpus,
    label_node,
    label_tree,
)

__all__ = [
    "ATTRIBUTE_PREFIX",
    "COLUMNS",
    "Label",
    "attribute_labels",
    "label_corpus",
    "label_node",
    "label_tree",
    "predicates",
    "xpath_scheme",
]
