"""Baseline XPath labeling scheme (Section 5.4's comparator, after [11]).

This scheme "uses textual positions of the start and end tags rather than
left and right": a document-order counter advances at every start tag *and*
every end tag, so element spans never share boundaries.  Containment still
answers descendant/ancestor/following/preceding and, with depth, child and
parent — but leaf adjacency is lost, so immediate-following and the other
LPath-only axes cannot be decided from these labels.  That asymmetry is the
point of Figure 10: the LPath scheme supports strictly more axes at the same
evaluation cost.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Optional

from ..tree.node import Tree, TreeNode

#: Column order for the XPath-labeled relation.
COLUMNS = ("tid", "start", "end", "depth", "id", "pid", "name", "value")


class XPathLabel(NamedTuple):
    """One row of the start/end label relation."""

    tid: int
    start: int
    end: int
    depth: int
    id: int
    pid: int
    name: str
    value: Optional[str]

    @property
    def is_attribute(self) -> bool:
        """True for attribute rows."""
        return self.name.startswith("@")


def label_tree(tree: Tree) -> list[XPathLabel]:
    """Start/end rows (elements then their attributes) in document order."""
    rows: list[XPathLabel] = []
    counter = 0

    def visit(node: TreeNode) -> None:
        nonlocal counter
        counter += 1
        start = counter
        for child in node.children:
            visit(child)
        counter += 1
        end = counter
        pid = node.parent.node_id if node.parent is not None else 0
        rows.append(
            XPathLabel(tree.tid, start, end, node.depth, node.node_id, pid, node.label, None)
        )
        for attr_name in sorted(node.attributes):
            rows.append(
                XPathLabel(
                    tree.tid, start, end, node.depth, node.node_id, pid,
                    "@" + attr_name, node.attributes[attr_name],
                )
            )

    visit(tree.root)
    rows.sort(key=lambda row: (row.start, row.name))
    return rows


def label_corpus(trees: Iterable[Tree]) -> Iterator[XPathLabel]:
    """Rows for a whole corpus."""
    for tree in trees:
        yield from label_tree(tree)


# -- containment predicates (what this scheme *can* decide) -------------------

def is_descendant(x: XPathLabel, y: XPathLabel) -> bool:
    """descendant(x, y) under start/end containment."""
    return x.tid == y.tid and y.start < x.start and x.end < y.end


def is_ancestor(x: XPathLabel, y: XPathLabel) -> bool:
    """ancestor(x, y) under start/end containment."""
    return is_descendant(y, x)


def is_child(x: XPathLabel, y: XPathLabel) -> bool:
    """child(x, y): containment plus one level of depth."""
    return is_descendant(x, y) and x.depth == y.depth + 1


def is_parent(x: XPathLabel, y: XPathLabel) -> bool:
    """parent(x, y)."""
    return is_child(y, x)


def is_following(x: XPathLabel, y: XPathLabel) -> bool:
    """following(x, y): x starts after y ends."""
    return x.tid == y.tid and x.start > y.end


def is_preceding(x: XPathLabel, y: XPathLabel) -> bool:
    """preceding(x, y): x ends before y starts."""
    return x.tid == y.tid and x.end < y.start
