"""Table 2: deciding every LPath axis by label comparisons.

Each predicate answers "does node ``x`` stand in the axis relation to node
``y``?" by inspecting only the two labels.  These are exactly the join
conditions the LPath-to-SQL compiler emits; keeping them in one module lets
property tests check them against the structural ground truth in
:mod:`repro.tree.traversal`, and lets the compiler and the documentation
share a single source of truth.

All relations are within one tree: every predicate requires
``x.tid == y.tid``.  ``x`` and ``y`` range over *element* rows unless noted.
"""

from __future__ import annotations

from .lpath_scheme import Label


def same_tree(x: Label, y: Label) -> bool:
    """Both labels belong to the same tree."""
    return x.tid == y.tid


# -- vertical navigation ----------------------------------------------------

def is_child(x: Label, y: Label) -> bool:
    """child(x, y): x is a child of y."""
    return same_tree(x, y) and x.pid == y.id


def is_parent(x: Label, y: Label) -> bool:
    """parent(x, y): x is the parent of y."""
    return same_tree(x, y) and x.id == y.pid


def is_descendant(x: Label, y: Label) -> bool:
    """descendant(x, y): y.left <= x.left, x.right <= y.right, x.depth > y.depth."""
    return (
        same_tree(x, y)
        and y.left <= x.left
        and x.right <= y.right
        and x.depth > y.depth
    )


def is_ancestor(x: Label, y: Label) -> bool:
    """ancestor(x, y): x.left <= y.left, y.right <= x.right, x.depth < y.depth."""
    return (
        same_tree(x, y)
        and x.left <= y.left
        and y.right <= x.right
        and x.depth < y.depth
    )


def is_descendant_or_self(x: Label, y: Label) -> bool:
    """Reflexive descendant (footnote 5 of the paper)."""
    return same_tree(x, y) and (x.id == y.id or is_descendant(x, y))


def is_ancestor_or_self(x: Label, y: Label) -> bool:
    """Reflexive ancestor."""
    return same_tree(x, y) and (x.id == y.id or is_ancestor(x, y))


# -- horizontal navigation ---------------------------------------------------

def is_immediate_following(x: Label, y: Label) -> bool:
    """immediate-following(x, y): x.left == y.right (adjacency property)."""
    return same_tree(x, y) and x.left == y.right


def is_following(x: Label, y: Label) -> bool:
    """following(x, y): x.left >= y.right."""
    return same_tree(x, y) and x.left >= y.right


def is_immediate_preceding(x: Label, y: Label) -> bool:
    """immediate-preceding(x, y): x.right == y.left."""
    return same_tree(x, y) and x.right == y.left


def is_preceding(x: Label, y: Label) -> bool:
    """preceding(x, y): x.right <= y.left."""
    return same_tree(x, y) and x.right <= y.left


# -- sibling navigation -------------------------------------------------------

def is_immediate_following_sibling(x: Label, y: Label) -> bool:
    """Sibling right after y: same parent and adjacent spans."""
    return same_tree(x, y) and x.pid == y.pid and x.left == y.right


def is_following_sibling(x: Label, y: Label) -> bool:
    """Sibling after y: same parent, x.left >= y.right."""
    return same_tree(x, y) and x.pid == y.pid and x.left >= y.right


def is_immediate_preceding_sibling(x: Label, y: Label) -> bool:
    """Sibling right before y."""
    return same_tree(x, y) and x.pid == y.pid and x.right == y.left


def is_preceding_sibling(x: Label, y: Label) -> bool:
    """Sibling before y."""
    return same_tree(x, y) and x.pid == y.pid and x.right <= y.left


# -- other ---------------------------------------------------------------------

def is_self(x: Label, y: Label) -> bool:
    """self(x, y): the same node."""
    return same_tree(x, y) and x.id == y.id and x.name == y.name


def is_attribute(x: Label, y: Label) -> bool:
    """attribute(x, y): x is an attribute row of element y."""
    return same_tree(x, y) and x.id == y.id and x.is_attribute


# -- scoping and alignment (Section 3 language features) -----------------------

def in_scope(x: Label, scope: Label) -> bool:
    """Subtree scoping: x lies within the subtree rooted at ``scope``."""
    return (
        same_tree(x, scope)
        and scope.left <= x.left
        and x.right <= scope.right
        and x.depth >= scope.depth
    )


def is_left_aligned(x: Label, scope: Label) -> bool:
    """Edge alignment ``^``: x starts at the scope's left edge."""
    return same_tree(x, scope) and x.left == scope.left


def is_right_aligned(x: Label, scope: Label) -> bool:
    """Edge alignment ``$``: x ends at the scope's right edge."""
    return same_tree(x, scope) and x.right == scope.right
